"""Randomized program generation: VM robustness and RIC soundness fuzzing.

A hypothesis-driven generator assembles random (but always valid) jsl
programs out of statement templates — object construction, prototype
methods, property churn, loops, branches on generated data, deletes,
keyed access — and checks the two properties that must hold for *any*
program:

1. the program runs to completion with a balanced VM (no stack residue,
   no host exceptions), and
2. the RIC Reuse run prints exactly what the Initial run printed
   (soundness), while never increasing the miss count.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.snapshot import serialize_user_globals
from repro.core.config import RICConfig
from repro.core.engine import Engine

# -- program generator ----------------------------------------------------------

_PROP_NAMES = ["alpha", "beta", "gamma", "delta", "epsilon"]


@st.composite
def jsl_programs(draw) -> str:
    """Generate a deterministic jsl program that logs a digest at the end."""
    lines: list[str] = [
        "var log = [];",
        "function Thing(seed) { this.seed = seed; this.score = 0; }",
        "Thing.prototype.bump = function (n) { this.score += n; return this.score; };",
        "var things = [];",
    ]

    # A pool of objects with randomized (but statically known) shapes.
    object_count = draw(st.integers(min_value=1, max_value=5))
    for index in range(object_count):
        props = draw(
            st.lists(
                st.sampled_from(_PROP_NAMES), min_size=0, max_size=4, unique=True
            )
        )
        literal = ", ".join(
            f"{name}: {draw(st.integers(min_value=-9, max_value=9))}"
            for name in props
        )
        lines.append(f"var obj{index} = {{{literal}}};")

    # Statement templates, chosen repeatedly.
    statement_count = draw(st.integers(min_value=3, max_value=15))
    for _ in range(statement_count):
        kind = draw(st.integers(min_value=0, max_value=12))
        target = draw(st.integers(min_value=0, max_value=object_count - 1))
        prop = draw(st.sampled_from(_PROP_NAMES))
        value = draw(st.integers(min_value=-99, max_value=99))
        if kind == 0:
            lines.append(f"obj{target}.{prop} = {value};")
        elif kind == 1:
            lines.append(f"log.push(obj{target}.{prop});")
        elif kind == 2:
            lines.append(f'obj{target}["{prop}"] = {value};')
        elif kind == 3:
            lines.append(
                f"if (obj{target}.{prop} !== undefined) "
                f"{{ log.push('has:{prop}'); }} else {{ log.push('no:{prop}'); }}"
            )
        elif kind == 4:
            lines.append(f"delete obj{target}.{prop};")
        elif kind == 5:
            lines.append(f"things.push(new Thing({value}));")
        elif kind == 6:
            lines.append(
                "for (var i = 0; i < things.length; i++) "
                f"{{ things[i].bump({abs(value) % 7}); }}"
            )
        elif kind == 7:
            lines.append(
                f"var keys{len(lines)} = [];"
                f"for (var k in obj{target}) {{ keys{len(lines)}.push(k); }}"
                f"log.push(keys{len(lines)}.join('+'));"
            )
        elif kind == 8:
            count = abs(value) % 4 + 1
            lines.append(
                f"for (var j = 0; j < {count}; j++) "
                f"{{ obj{target}.{prop} = j; log.push(obj{target}.{prop}); }}"
            )
        elif kind == 9:
            lines.append(
                f"try {{ if (obj{target}.{prop} === {value}) "
                f"{{ throw 'match'; }} }} catch (e) {{ log.push('caught'); }}"
            )
        elif kind == 10:
            # prototype mutation mid-run: stresses chain-handler invalidation
            lines.append(
                f"Thing.prototype.extra{len(lines)} = {value};"
                "if (things.length > 0) { "
                f"log.push(things[0].extra{len(lines) - 1} !== undefined ? 'proto+' : 'proto-'); }}"
            )
        elif kind == 11:
            # Object.create-based derivation
            lines.append(
                f"var derived{len(lines)} = Object.create(obj{target});"
                f"derived{len(lines)}.own = {value};"
                f"log.push(derived{len(lines)}.own + ':' + (derived{len(lines)}.{prop} === obj{target}.{prop}));"
            )
        else:
            # bound method invocation
            lines.append(
                "if (things.length > 0) { "
                f"var bound{len(lines)} = things[0].bump.bind(things[0], {abs(value) % 5});"
                f"log.push(bound{len(lines)}()); }}"
            )

    # Digest: everything observable, deterministically.
    lines.append("var scores = [];")
    lines.append(
        "for (var t = 0; t < things.length; t++) { scores.push(things[t].score); }"
    )
    lines.append('console.log(log.join(","));')
    lines.append('console.log("scores:", scores.join(","));')
    return "\n".join(lines)


# -- properties ------------------------------------------------------------------


class TestGeneratedPrograms:
    @given(jsl_programs())
    @settings(max_examples=40, deadline=None)
    def test_programs_run_to_completion(self, source):
        engine = Engine(seed=4)
        profile = engine.run(source, name="fuzz")
        assert len(profile.console_output) == 2

    @given(jsl_programs())
    @settings(max_examples=40, deadline=None)
    def test_ric_soundness_on_generated_programs(self, source):
        """The headline property: for any program, RIC reuse must be
        observationally identical to a cold run and never increase misses."""
        engine = Engine(seed=4)
        initial = engine.run(source, name="fuzz")
        record = engine.extract_icrecord()
        conventional = engine.run(source, name="fuzz")
        ric = engine.run(source, name="fuzz", icrecord=record)
        assert initial.console_output == conventional.console_output
        assert ric.console_output == initial.console_output
        assert ric.counters.ic_misses <= conventional.counters.ic_misses

    @given(jsl_programs(), jsl_programs())
    @settings(max_examples=15, deadline=None)
    def test_foreign_records_are_harmless(self, source_a, source_b):
        """Reusing program A's record while running program B must never
        change B's behaviour (it may simply not help)."""
        engine = Engine(seed=4)
        engine.run(source_a, name="a")
        record = engine.extract_icrecord()
        clean = engine.run(source_b, name="b")
        with_foreign = engine.run(source_b, name="b", icrecord=record)
        assert clean.console_output == with_foreign.console_output

    @given(jsl_programs())
    @settings(max_examples=15, deadline=None)
    def test_record_serialization_stable_for_generated_programs(self, source):
        import json

        from repro.ric.serialize import record_from_json, record_to_json

        engine = Engine(seed=4)
        engine.run(source, name="fuzz")
        record = engine.extract_icrecord()
        round_tripped = record_from_json(json.loads(json.dumps(record_to_json(record))))
        ric = engine.run(source, name="fuzz", icrecord=round_tripped)
        assert ric.console_output == engine.run(source, name="fuzz").console_output


# -- fast-path cross-check (seeded, deterministic) -------------------------------
#
# Unlike the hypothesis pass above, this generator is driven by a plain
# ``random.Random(seed)`` so every CI run executes the *same* corpus — a
# reproducible wall in front of the PR-2 GET_PROP/SET_PROP fast paths.
# Programs are deliberately property-access-heavy: shared accessor
# functions over object pools of mixed shapes (sites go mono → poly →
# megamorphic), add-transitions, prototype-method calls, deletes and
# not-found probes.


def property_heavy_program(rng: random.Random) -> str:
    """One deterministic, always-valid, property-access-heavy jsl program."""
    props = ["p", "q", "r", "s"]
    lines = ["var log = [];"]

    pool_size = rng.randint(3, 7)
    for index in range(pool_size):
        extra = rng.sample(props, rng.randint(0, len(props)))
        literal = ", ".join(
            ["v: %d" % rng.randint(-9, 9)]
            + [f"{name}: {rng.randint(-9, 9)}" for name in extra]
        )
        lines.append(f"var obj{index} = {{{literal}}};")
    lines.append(
        "var pool = [%s];" % ", ".join(f"obj{i}" for i in range(pool_size))
    )

    accessor_count = rng.randint(1, 3)
    for index in range(accessor_count):
        lines.append(f"function get{index}(o) {{ return o.v; }}")
        lines.append(f"function set{index}(o, x) {{ o.v = x; }}")

    lines.append("function Node(tag) { this.tag = tag; this.hits = 0; }")
    lines.append(
        "Node.prototype.touch = function () { this.hits += 1; return this.tag; };"
    )
    lines.append("var nodes = [];")

    for _ in range(rng.randint(6, 18)):
        kind = rng.randint(0, 7)
        accessor = rng.randint(0, accessor_count - 1)
        count = rng.randint(2, 12)
        value = rng.randint(-99, 99)
        prop = rng.choice(props)
        if kind == 0:
            lines.append(
                f"for (var i{len(lines)} = 0; i{len(lines)} < {count}; i{len(lines)}++) "
                f"{{ log.push(get{accessor}(pool[i{len(lines)} % pool.length])); }}"
            )
        elif kind == 1:
            lines.append(
                f"for (var i{len(lines)} = 0; i{len(lines)} < {count}; i{len(lines)}++) "
                f"{{ set{accessor}(pool[i{len(lines)} % pool.length], i{len(lines)} + {value}); }}"
            )
        elif kind == 2:
            target = rng.randint(0, pool_size - 1)
            lines.append(f"obj{target}.{prop} = {value};")
            lines.append(f"log.push(obj{target}.{prop});")
        elif kind == 3:
            target = rng.randint(0, pool_size - 1)
            lines.append(f"delete obj{target}.{prop};")
            lines.append(f"log.push(obj{target}.{prop} === undefined);")
        elif kind == 4:
            lines.append(f"nodes.push(new Node({value}));")
            lines.append(
                "for (var n%d = 0; n%d < nodes.length; n%d++) "
                "{ log.push(nodes[n%d].touch()); }"
                % (len(lines), len(lines), len(lines), len(lines))
            )
        elif kind == 5:
            # fresh object grown property-by-property: add-transitions
            name = f"grown{len(lines)}"
            lines.append(f"var {name} = {{}};")
            for step, grown_prop in enumerate(rng.sample(props, len(props))):
                lines.append(f"{name}.{grown_prop} = {step};")
            lines.append(f"log.push({name}.{props[0]} + {name}.{props[-1]});")
        elif kind == 6:
            target = rng.randint(0, pool_size - 1)
            lines.append(
                f"log.push(obj{target}.absent === undefined ? 'miss' : 'hit');"
            )
        else:
            lines.append(
                f"for (var m{len(lines)} = 0; m{len(lines)} < {count}; m{len(lines)}++) "
                f"{{ var o{len(lines)} = pool[m{len(lines)} % pool.length]; "
                f"set{accessor}(o{len(lines)}, get{accessor}(o{len(lines)}) + 1); }}"
            )

    lines.append("var tally = 0;")
    lines.append(
        "for (var t = 0; t < pool.length; t++) { tally += get0(pool[t]); }"
    )
    lines.append('console.log(log.join(","));')
    lines.append('console.log("tally:", tally, "nodes:", nodes.length);')
    return "\n".join(lines)


def run_fastpath_protocol(source: str, fastpaths: bool, seed: int = 9) -> dict:
    """Full protocol (cold -> extract -> reuse) under one fast-path mode,
    fingerprinted: output, counters and address-free heap for both runs."""
    engine = Engine(config=RICConfig(interp_fastpaths=fastpaths), seed=seed)
    cold = engine.run(source, name="fuzz")
    cold_state = serialize_user_globals(engine.last_run.runtime)
    record = engine.extract_icrecord()
    reused = engine.run(source, name="fuzz", icrecord=record)
    reused_state = serialize_user_globals(engine.last_run.runtime)
    return {
        "cold_output": cold.console_output,
        "cold_counters": cold.counters.as_dict(),
        "cold_state": cold_state,
        "reused_output": reused.console_output,
        "reused_counters": reused.counters.as_dict(),
        "reused_state": reused_state,
    }


class TestFastPathCrossCheck:
    """The GET_PROP/SET_PROP fast paths must be invisible: identical output,
    identical heap, identical counters — cold *and* under RIC reuse."""

    @pytest.mark.parametrize("seed", range(12))
    def test_fast_path_matches_generic_path(self, seed):
        source = property_heavy_program(random.Random(1000 + seed))
        fast = run_fastpath_protocol(source, fastpaths=True)
        generic = run_fastpath_protocol(source, fastpaths=False)
        assert fast == generic
        # The corpus must actually lean on the IC machinery to mean anything.
        assert fast["cold_counters"]["ic_accesses"] > 20
        assert fast["cold_counters"]["ic_hits"] > 0

    def test_generator_is_deterministic(self):
        assert property_heavy_program(random.Random(7)) == property_heavy_program(
            random.Random(7)
        )


# -- polymorphic-shape generator (seeded, tier-aware) ----------------------------
#
# Programs whose accessor sites see an *exact, chosen* number of hidden
# classes: one constructor family per shape (x/y/tag at distinct offsets
# thanks to per-family pad fields), one read and one write accessor per
# polymorphic degree, pools striped round-robin across the families.  A
# degree-2 site exercises the shallow POLY tier, degree-POLY_LIMIT the
# deepest, degree-(POLY_LIMIT+1) tips megamorphic — the MEGA boundary is
# a generator *parameter*, not an accident of the random draw.


def polymorphic_shape_program(rng: random.Random, degrees) -> str:
    """One deterministic program with one read site and one write site per
    polymorphic degree in ``degrees`` (each seeing exactly that many shapes).

    All globals are var-hoisted before any hot loop runs, so every named
    property site's shape population is exactly its pool's stripe count.
    """
    degrees = sorted(set(degrees))
    max_degree = max(degrees)
    lines = []
    for family in range(max_degree):
        pads = "".join(f"this.pad{p} = {p}; " for p in range(family))
        lines.append(
            f"function Shape{family}(i) {{ {pads}this.x = i + {family}; "
            f"this.y = i * 2; this.tag = {family}; }}"
        )
    for degree in degrees:
        lines.append(f"function read{degree}(o) {{ return o.x + o.y + o.tag; }}")
        lines.append(f"function write{degree}(o, v) {{ o.y = v + o.x; }}")
        size = rng.randint(2 * degree, 4 * degree)
        members = ", ".join(
            f"new Shape{i % degree}({rng.randint(0, 9)})" for i in range(size)
        )
        lines.append(f"var pool{degree} = [{members}];")

    lines.append("var sink = 0;")
    for _ in range(rng.randint(4, 9)):
        degree = rng.choice(degrees)
        mix = rng.randint(0, 2)
        i = f"i{len(lines)}"
        if mix == 0:  # read sweep
            lines.append(
                f"for (var {i} = 0; {i} < pool{degree}.length; {i}++) "
                f"{{ sink = sink + read{degree}(pool{degree}[{i}]); }}"
            )
        elif mix == 1:  # write sweep
            lines.append(
                f"for (var {i} = 0; {i} < pool{degree}.length; {i}++) "
                f"{{ write{degree}(pool{degree}[{i}], {i} + {rng.randint(-9, 9)}); }}"
            )
        else:  # read-modify-write
            o = f"o{len(lines)}"
            lines.append(
                f"for (var {i} = 0; {i} < pool{degree}.length; {i}++) "
                f"{{ var {o} = pool{degree}[{i}]; "
                f"write{degree}({o}, read{degree}({o})); }}"
            )

    for degree in degrees:
        t = f"t{degree}"
        lines.append(f"var digest{degree} = 0;")
        lines.append(
            f"for (var {t} = 0; {t} < pool{degree}.length; {t}++) "
            f"{{ digest{degree} = digest{degree} + read{degree}(pool{degree}[{t}]); }}"
        )
        lines.append(f'console.log("d{degree}:", digest{degree});')
    lines.append('console.log("sink:", sink);')
    return "\n".join(lines)


class TestPolymorphicShapeCrossCheck:
    """The POLY/MEGA tier fast paths under the same invisibility contract:
    for chosen shape populations, fast-path and generic execution agree on
    output, heap and every counter — and the MEGA boundary sits exactly at
    POLY_LIMIT shapes."""

    @pytest.mark.parametrize("seed", range(8))
    def test_poly_fast_path_matches_generic_path(self, seed):
        rng = random.Random(5000 + seed)
        degrees = rng.sample([2, 3, 4, 5, 6], rng.randint(2, 4))
        source = polymorphic_shape_program(rng, degrees)
        fast = run_fastpath_protocol(source, fastpaths=True)
        generic = run_fastpath_protocol(source, fastpaths=False)
        assert fast == generic
        # The corpus must actually reach the POLY tier to mean anything.
        assert fast["cold_counters"]["ic_hits_poly"] > 0

    @pytest.mark.parametrize("degree", [2, 3, 4, 5, 7])
    def test_each_degree_cross_checks(self, degree):
        source = polymorphic_shape_program(random.Random(degree), [degree])
        fast = run_fastpath_protocol(source, fastpaths=True)
        generic = run_fastpath_protocol(source, fastpaths=False)
        assert fast == generic

    def test_mega_boundary_at_poly_limit(self):
        """Exactly POLY_LIMIT shapes: the deepest POLY tier, no MEGA."""
        from repro.ic.icvector import POLY_LIMIT

        source = polymorphic_shape_program(random.Random(42), [POLY_LIMIT])
        result = run_fastpath_protocol(source, fastpaths=True)
        counters = result["cold_counters"]
        assert counters["ic_hits_poly"] > 0
        assert counters["ic_poly_transitions"] > 0
        assert counters["ic_mega_transitions"] == 0
        assert counters["ic_hits_mega"] == 0

    def test_mega_boundary_past_poly_limit(self):
        """POLY_LIMIT + 1 shapes: the same program shape now tips MEGA."""
        from repro.ic.icvector import POLY_LIMIT

        source = polymorphic_shape_program(random.Random(42), [POLY_LIMIT + 1])
        result = run_fastpath_protocol(source, fastpaths=True)
        counters = result["cold_counters"]
        assert counters["ic_mega_transitions"] >= 1
        assert counters["ic_hits_mega"] > 0
        # And it still cross-checks against the generic interpreter.
        assert result == run_fastpath_protocol(source, fastpaths=False)

    def test_polymorphic_generator_is_deterministic(self):
        assert polymorphic_shape_program(
            random.Random(3), [2, 5]
        ) == polymorphic_shape_program(random.Random(3), [2, 5])


# -- type-stability generators (seeded, specialization cross-check) --------------
#
# Two seeded generators around one skeleton of shared helper functions
# (int/float arithmetic, monomorphic property accessors): the *stable*
# variant keeps every helper's operand types consistent for the whole
# run — the profile the quickening pass specializes — while the
# *unstable* variant pushes mixed types and shape churn through the very
# same sites — the profile that must become tombstones.  Both are
# cross-checked specialize-on vs specialize-off under the full protocol
# (cold -> extract -> reuse): output, heap, and every counter outside
# the declared specialization-variant set must be identical.


def _stability_skeleton() -> list[str]:
    return [
        "var out = [];",
        "function addi(a, b) { return a + b; }",
        "function subi(a, b) { return a - b; }",
        "function mulf(a, b) { return a * b; }",
        "function Pt(x, y) { this.x = x; this.y = y; }",
        "function getx(p) { return p.x; }",
        "function setx(p, v) { p.x = v; }",
        "var si = 0;",
        "var sf = 0.5;",
    ]


def type_stable_program(rng: random.Random) -> str:
    """Every arithmetic helper sees one operand class for the whole run
    and every property site stays monomorphic: the fully quickenable
    profile (reuse should specialize and never deopt)."""
    lines = _stability_skeleton()
    size = rng.randint(4, 10)
    lines.append("var pts = [];")
    lines.append(
        f"for (var p = 0; p < {size}; p++) {{ pts.push(new Pt(p, p * 2)); }}"
    )
    for _ in range(rng.randint(4, 10)):
        kind = rng.randint(0, 3)
        n = rng.randint(5, 30)
        c = rng.randint(1, 9)
        i = f"i{len(lines)}"
        if kind == 0:
            lines.append(
                f"for (var {i} = 0; {i} < {n}; {i}++) "
                f"{{ si = addi(si, {i} + {c}); }}"
            )
        elif kind == 1:
            lines.append(
                f"for (var {i} = 0; {i} < {n}; {i}++) "
                f"{{ sf = sf + mulf(0.25, {c}); }}"
            )
        elif kind == 2:
            lines.append(
                f"for (var {i} = 0; {i} < pts.length; {i}++) "
                f"{{ setx(pts[{i}], getx(pts[{i}]) + {c}); }}"
            )
        else:
            lines.append(
                f"for (var {i} = 0; {i} < {n}; {i}++) "
                f"{{ si = subi(si, {c}); }}"
            )
    lines.append("out.push(si); out.push(sf);")
    lines.append("for (var t = 0; t < pts.length; t++) { out.push(pts[t].x); }")
    lines.append('console.log(out.join(","));')
    return "\n".join(lines)


def type_unstable_program(rng: random.Random) -> str:
    """The same helpers fed deliberately inconsistent operands — strings
    and bools through the arithmetic, shape churn through the accessors —
    so extraction must tombstone (or skip) every one of those sites and
    reuse must stay deopt-free *because* nothing was specialized."""
    lines = _stability_skeleton()
    size = rng.randint(4, 8)
    lines.append("var pts = [];")
    lines.append(
        f"for (var p = 0; p < {size}; p++) {{ pts.push(new Pt(p, p * 2)); }}"
    )
    lines.append('var st = "";')
    for _ in range(rng.randint(4, 9)):
        kind = rng.randint(0, 4)
        n = rng.randint(4, 16)
        c = rng.randint(1, 9)
        i = f"i{len(lines)}"
        if kind == 0:
            # ints AND strings through the same addi site
            lines.append(
                f"for (var {i} = 0; {i} < {n}; {i}++) "
                f"{{ si = addi(si, {i}); st = addi(st, 'x'); }}"
            )
        elif kind == 1:
            # bools through mulf: non-numeric operand class
            lines.append(
                f"for (var {i} = 0; {i} < {n}; {i}++) "
                f"{{ sf = sf + mulf(true, {c}); }}"
            )
        elif kind == 2:
            # shape churn under the accessors: extra props mid-pool
            lines.append(
                f"for (var {i} = 0; {i} < pts.length; {i}++) {{ "
                f"if ({i} % 2 === 0) {{ pts[{i}].extra{len(lines)} = {c}; }} "
                f"setx(pts[{i}], getx(pts[{i}]) + 1); }}"
            )
        elif kind == 3:
            lines.append(
                f"for (var {i} = 0; {i} < {n}; {i}++) "
                f"{{ si = subi(si, {c}); }}"
            )
        else:
            # delete-and-readd: the x property moves across hidden classes
            lines.append(
                f"delete pts[0].x; pts[0].x = {c}; "
                f"out.push(getx(pts[0]));"
            )
    lines.append("out.push(si); out.push(sf); out.push(st.length);")
    lines.append("for (var t = 0; t < pts.length; t++) { out.push(pts[t].x); }")
    lines.append('console.log(out.join(","));')
    return "\n".join(lines)


def run_specialize_protocol(scripts, specialize: bool, seed: int = 21) -> dict:
    """Full protocol (Initial -> extract -> cold -> reuse) under one
    specialize mode, fingerprinted like :func:`run_fastpath_protocol`."""
    engine = Engine(config=RICConfig(specialize=specialize), seed=seed)
    engine.run(scripts, name="spec")
    record = engine.extract_icrecord()
    cold = engine.run(scripts, name="spec")
    cold_state = serialize_user_globals(engine.last_run.runtime)
    reused = engine.run(scripts, name="spec", icrecord=record)
    reused_state = serialize_user_globals(engine.last_run.runtime)
    return {
        "cold_output": cold.console_output,
        "cold_counters": cold.counters.as_dict(),
        "cold_state": cold_state,
        "reused_output": reused.console_output,
        "reused_counters": reused.counters.as_dict(),
        "reused_state": reused_state,
    }


def assert_specialization_invisible(on: dict, off: dict) -> None:
    """Everything observable — and every counter outside the declared
    variant set — must be identical between the two modes."""
    from tests.test_differential import SPECIALIZE_VARIANT_COUNTERS

    assert on["cold_output"] == off["cold_output"]
    assert on["reused_output"] == off["reused_output"]
    assert on["cold_state"] == off["cold_state"]
    assert on["reused_state"] == off["reused_state"]
    for mode in ("cold_counters", "reused_counters"):
        for key, value in on[mode].items():
            if key not in SPECIALIZE_VARIANT_COUNTERS:
                assert value == off[mode][key], f"{mode}.{key}"


class TestTypeStabilityCrossCheck:
    @pytest.mark.parametrize("seed", range(8))
    def test_type_stable_programs_specialize_without_deopts(self, seed):
        scripts = [("stable.jsl", type_stable_program(random.Random(8000 + seed)))]
        on = run_specialize_protocol(scripts, specialize=True)
        off = run_specialize_protocol(scripts, specialize=False)
        assert_specialization_invisible(on, off)
        # The corpus must actually engage the quickening pass to mean
        # anything — and a type-stable trace never fails a guard.
        assert on["reused_counters"]["specialized_sites"] > 0
        assert on["reused_counters"]["specialized_hits"] > 0
        assert on["reused_counters"]["deopts"] == 0
        assert off["reused_counters"]["specialized_sites"] == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_type_unstable_programs_stay_generic(self, seed):
        scripts = [
            ("unstable.jsl", type_unstable_program(random.Random(9000 + seed)))
        ]
        on = run_specialize_protocol(scripts, specialize=True)
        off = run_specialize_protocol(scripts, specialize=False)
        assert_specialization_invisible(on, off)
        # Mixed-type arith sites became tombstones at extraction, so they
        # never specialize and never pay a guard failure.  Property sites
        # may still deopt (shape churn can replay differently under
        # preloading) — but every failure demotes exactly one site, and
        # no site can fail more than once.
        reused = on["reused_counters"]
        assert reused["deopts"] == reused["despecialized_sites"]
        assert reused["deopts"] <= reused["specialized_sites"]

    def test_unstable_demotions_are_persistent(self):
        """Whatever deopted under reuse is tombstoned by the next
        extraction, so the generation after runs deopt-free."""
        scripts = [("unstable.jsl", type_unstable_program(random.Random(9000)))]
        engine = Engine(config=RICConfig(specialize=True), seed=21)
        engine.run(scripts, name="gen0")
        record = engine.extract_icrecord()
        first = engine.run(scripts, name="gen1", icrecord=record)
        record2 = engine.extract_icrecord()
        second = engine.run(scripts, name="gen2", icrecord=record2)
        assert second.counters.deopts == 0
        assert second.console_output == first.console_output

    def test_generators_are_deterministic(self):
        assert type_stable_program(random.Random(5)) == type_stable_program(
            random.Random(5)
        )
        assert type_unstable_program(random.Random(5)) == type_unstable_program(
            random.Random(5)
        )


# -- guard-failure storm ---------------------------------------------------------
#
# The worst case for any speculation scheme: a record trained under one
# application, reused under another that violates *every* speculated
# profile at once — strings through the int-specialized arithmetic,
# differently shaped objects through the slot-specialized accessors.
# Every guard fails, every site demotes, and the run must still be
# observationally identical to an unspecialized one.


def storm_sources(rng: random.Random) -> "tuple[str, str, str]":
    """(shared library, type-stable trainer app, storm app)."""
    lib = (
        "function apply(a, b) { return a + b; }\n"
        "function getv(o) { return o.v; }\n"
        "function setv(o, x) { o.v = x; }\n"
    )
    n = rng.randint(10, 25)
    c = rng.randint(1, 9)
    trainer = (
        "var acc = 0;\n"
        "var objs = [];\n"
        f"for (var i = 0; i < {n}; i++) {{ objs.push({{v: i}}); }}\n"
        "for (var j = 0; j < objs.length; j++) "
        f"{{ setv(objs[j], getv(objs[j]) + {c}); acc = apply(acc, j); }}\n"
        'console.log("acc:", acc);\n'
    )
    m = rng.randint(6, 15)
    storm = (
        'var s = "";\n'
        "var weird = [];\n"
        # w before v: a different hidden class with v at another offset
        f"for (var i = 0; i < {m}; i++) {{ weird.push({{w: i, v: i * 2}}); }}\n"
        "for (var j = 0; j < weird.length; j++) "
        '{ s = apply(s, "x"); setv(weird[j], getv(weird[j]) + 1); }\n'
        'console.log("s:", s.length);\n'
        "var sum = 0;\n"
        "for (var k = 0; k < weird.length; k++) { sum = sum + getv(weird[k]); }\n"
        'console.log("sum:", sum);\n'
    )
    return lib, trainer, storm


class TestGuardFailureStorm:
    @pytest.mark.parametrize("seed", range(6))
    def test_storm_demotes_everything_and_changes_nothing(self, seed):
        lib, trainer, storm = storm_sources(random.Random(7000 + seed))
        trainer_engine = Engine(seed=31)
        trainer_engine.run(
            [("lib.jsl", lib), ("train.jsl", trainer)], name="train"
        )
        lib_record = trainer_engine.extract_per_script_records()["lib.jsl"]
        assert any(not fb.mega for fb in lib_record.site_feedback.values())

        scripts = [("lib.jsl", lib), ("storm.jsl", storm)]

        def reuse(specialize: bool):
            engine = Engine(config=RICConfig(specialize=specialize), seed=77)
            profile = engine.run(scripts, name="storm", icrecord=lib_record)
            return profile, serialize_user_globals(engine.last_run.runtime)

        on, on_state = reuse(True)
        off, off_state = reuse(False)
        assert on.console_output == off.console_output
        assert on_state == off_state

        # Every specialized site's guard failed exactly once and the
        # site went (and stayed) generic.
        assert on.counters.specialized_sites > 0
        assert on.counters.deopts >= 1
        assert on.counters.deopts == on.counters.despecialized_sites
        assert off.counters.specialized_sites == 0
        assert off.counters.deopts == 0

        from tests.test_differential import SPECIALIZE_VARIANT_COUNTERS

        on_dict, off_dict = on.counters.as_dict(), off.counters.as_dict()
        for key, value in on_dict.items():
            if key not in SPECIALIZE_VARIANT_COUNTERS:
                assert value == off_dict[key], key
