"""Randomized program generation: VM robustness and RIC soundness fuzzing.

A hypothesis-driven generator assembles random (but always valid) jsl
programs out of statement templates — object construction, prototype
methods, property churn, loops, branches on generated data, deletes,
keyed access — and checks the two properties that must hold for *any*
program:

1. the program runs to completion with a balanced VM (no stack residue,
   no host exceptions), and
2. the RIC Reuse run prints exactly what the Initial run printed
   (soundness), while never increasing the miss count.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine

# -- program generator ----------------------------------------------------------

_PROP_NAMES = ["alpha", "beta", "gamma", "delta", "epsilon"]


@st.composite
def jsl_programs(draw) -> str:
    """Generate a deterministic jsl program that logs a digest at the end."""
    lines: list[str] = [
        "var log = [];",
        "function Thing(seed) { this.seed = seed; this.score = 0; }",
        "Thing.prototype.bump = function (n) { this.score += n; return this.score; };",
        "var things = [];",
    ]

    # A pool of objects with randomized (but statically known) shapes.
    object_count = draw(st.integers(min_value=1, max_value=5))
    for index in range(object_count):
        props = draw(
            st.lists(
                st.sampled_from(_PROP_NAMES), min_size=0, max_size=4, unique=True
            )
        )
        literal = ", ".join(
            f"{name}: {draw(st.integers(min_value=-9, max_value=9))}"
            for name in props
        )
        lines.append(f"var obj{index} = {{{literal}}};")

    # Statement templates, chosen repeatedly.
    statement_count = draw(st.integers(min_value=3, max_value=15))
    for _ in range(statement_count):
        kind = draw(st.integers(min_value=0, max_value=12))
        target = draw(st.integers(min_value=0, max_value=object_count - 1))
        prop = draw(st.sampled_from(_PROP_NAMES))
        value = draw(st.integers(min_value=-99, max_value=99))
        if kind == 0:
            lines.append(f"obj{target}.{prop} = {value};")
        elif kind == 1:
            lines.append(f"log.push(obj{target}.{prop});")
        elif kind == 2:
            lines.append(f'obj{target}["{prop}"] = {value};')
        elif kind == 3:
            lines.append(
                f"if (obj{target}.{prop} !== undefined) "
                f"{{ log.push('has:{prop}'); }} else {{ log.push('no:{prop}'); }}"
            )
        elif kind == 4:
            lines.append(f"delete obj{target}.{prop};")
        elif kind == 5:
            lines.append(f"things.push(new Thing({value}));")
        elif kind == 6:
            lines.append(
                "for (var i = 0; i < things.length; i++) "
                f"{{ things[i].bump({abs(value) % 7}); }}"
            )
        elif kind == 7:
            lines.append(
                f"var keys{len(lines)} = [];"
                f"for (var k in obj{target}) {{ keys{len(lines)}.push(k); }}"
                f"log.push(keys{len(lines)}.join('+'));"
            )
        elif kind == 8:
            count = abs(value) % 4 + 1
            lines.append(
                f"for (var j = 0; j < {count}; j++) "
                f"{{ obj{target}.{prop} = j; log.push(obj{target}.{prop}); }}"
            )
        elif kind == 9:
            lines.append(
                f"try {{ if (obj{target}.{prop} === {value}) "
                f"{{ throw 'match'; }} }} catch (e) {{ log.push('caught'); }}"
            )
        elif kind == 10:
            # prototype mutation mid-run: stresses chain-handler invalidation
            lines.append(
                f"Thing.prototype.extra{len(lines)} = {value};"
                "if (things.length > 0) { "
                f"log.push(things[0].extra{len(lines) - 1} !== undefined ? 'proto+' : 'proto-'); }}"
            )
        elif kind == 11:
            # Object.create-based derivation
            lines.append(
                f"var derived{len(lines)} = Object.create(obj{target});"
                f"derived{len(lines)}.own = {value};"
                f"log.push(derived{len(lines)}.own + ':' + (derived{len(lines)}.{prop} === obj{target}.{prop}));"
            )
        else:
            # bound method invocation
            lines.append(
                "if (things.length > 0) { "
                f"var bound{len(lines)} = things[0].bump.bind(things[0], {abs(value) % 5});"
                f"log.push(bound{len(lines)}()); }}"
            )

    # Digest: everything observable, deterministically.
    lines.append("var scores = [];")
    lines.append(
        "for (var t = 0; t < things.length; t++) { scores.push(things[t].score); }"
    )
    lines.append('console.log(log.join(","));')
    lines.append('console.log("scores:", scores.join(","));')
    return "\n".join(lines)


# -- properties ------------------------------------------------------------------


class TestGeneratedPrograms:
    @given(jsl_programs())
    @settings(max_examples=40, deadline=None)
    def test_programs_run_to_completion(self, source):
        engine = Engine(seed=4)
        profile = engine.run(source, name="fuzz")
        assert len(profile.console_output) == 2

    @given(jsl_programs())
    @settings(max_examples=40, deadline=None)
    def test_ric_soundness_on_generated_programs(self, source):
        """The headline property: for any program, RIC reuse must be
        observationally identical to a cold run and never increase misses."""
        engine = Engine(seed=4)
        initial = engine.run(source, name="fuzz")
        record = engine.extract_icrecord()
        conventional = engine.run(source, name="fuzz")
        ric = engine.run(source, name="fuzz", icrecord=record)
        assert initial.console_output == conventional.console_output
        assert ric.console_output == initial.console_output
        assert ric.counters.ic_misses <= conventional.counters.ic_misses

    @given(jsl_programs(), jsl_programs())
    @settings(max_examples=15, deadline=None)
    def test_foreign_records_are_harmless(self, source_a, source_b):
        """Reusing program A's record while running program B must never
        change B's behaviour (it may simply not help)."""
        engine = Engine(seed=4)
        engine.run(source_a, name="a")
        record = engine.extract_icrecord()
        clean = engine.run(source_b, name="b")
        with_foreign = engine.run(source_b, name="b", icrecord=record)
        assert clean.console_output == with_foreign.console_output

    @given(jsl_programs())
    @settings(max_examples=15, deadline=None)
    def test_record_serialization_stable_for_generated_programs(self, source):
        import json

        from repro.ric.serialize import record_from_json, record_to_json

        engine = Engine(seed=4)
        engine.run(source, name="fuzz")
        record = engine.extract_icrecord()
        round_tripped = record_from_json(json.loads(json.dumps(record_to_json(record))))
        ric = engine.run(source, name="fuzz", icrecord=round_tripped)
        assert ric.console_output == engine.run(source, name="fuzz").console_output
