"""Differential concurrency oracle for the executor layer.

The contract (INTERNALS §11): N sessions sharing one artifact cache
produce results **bit-identical** to the same N requests run solo —
concurrency must never change what a run computes, only when it runs.
The oracle is therefore differential: every ``run_many(jobs=N)`` batch
is compared counter-for-counter against its sequential twin (same
seeds, same artifacts, same records).
"""

import pytest

from repro.core.budget import ExecutionBudget
from repro.core.engine import Engine
from repro.core.errors import BudgetExceeded, ExecutionAborted
from repro.core.executor import EngineExecutor, RunRequest
from repro.harness.bench import bench_workloads
from repro.lang.errors import JSLRuntimeError, JSLSyntaxError

SOURCE = """
function T(v) { this.v = v; }
var items = [new T(1), new T(2), new T(3)];
var total = 0;
for (var i = 0; i < items.length; i++) { total += items[i].v; }
console.log("total", total);
"""


def _fingerprint(outcome):
    """Everything a run computes, as comparable data."""
    profile = outcome.profile
    return {
        "counters": profile.counters.as_dict(),
        "console": profile.console_output,
        "heap_bytes": profile.heap_bytes,
        "mode": profile.mode,
        "scripts": profile.scripts,
    }


class TestDifferentialOracle:
    @pytest.mark.slow
    def test_concurrent_counters_bit_identical_to_sequential(self):
        """The acceptance oracle: jobs=4 over the ten workloads (one
        warmed reuse run each) against their jobs=1 twins."""
        engine = Engine(seed=11)
        executor = EngineExecutor(engine)

        requests = []
        for index, (name, scripts) in enumerate(bench_workloads().items()):
            engine.run(scripts, name=f"{name}-warm")
            record = engine.extract_icrecord()
            requests.append(
                RunRequest(
                    scripts=scripts,
                    name=name,
                    icrecord=record,
                    seed=1000 + index,
                )
            )

        sequential = executor.run_many(requests, jobs=1)
        concurrent = executor.run_many(requests, jobs=4)

        assert len(sequential) == len(concurrent) == 10
        for seq, conc in zip(sequential, concurrent):
            assert seq.ok and conc.ok
            assert _fingerprint(seq) == _fingerprint(conc)
        # Reuse actually happened under the pool (not silently cold).
        assert all(
            outcome.profile.counters.ric_validations > 0
            for outcome in concurrent
        )

    def test_seed_draws_are_submission_ordered(self):
        """Unseeded requests draw from the engine's stream at submission
        time, so two identically-seeded engines agree request-for-request
        whatever the pool width."""

        def batch(jobs):
            engine = Engine(seed=77)
            outcomes = EngineExecutor(engine).run_many(
                [RunRequest(scripts=SOURCE, name=f"r{i}") for i in range(6)],
                jobs=jobs,
            )
            return [_fingerprint(outcome) for outcome in outcomes]

        assert batch(1) == batch(4)


class TestIsolation:
    def test_one_failure_never_poisons_the_batch(self):
        engine = Engine(seed=3)
        executor = EngineExecutor(engine)
        requests = [
            RunRequest(scripts=SOURCE, name="ok-1"),
            RunRequest(scripts="var = ;", name="syntax"),
            RunRequest(scripts="nope();", name="guest-throw"),
            RunRequest(scripts=SOURCE, name="ok-2"),
        ]
        outcomes = executor.run_many(requests, jobs=4)

        # Outcomes come back in submission order, each tied to its request.
        assert [outcome.request for outcome in outcomes] == requests
        ok1, syntax, guest, ok2 = outcomes
        assert ok1.ok and ok2.ok
        assert ok1.profile.console_output == ["total 6"]
        assert ok2.profile.console_output == ["total 6"]
        assert isinstance(syntax.error, JSLSyntaxError)
        assert not syntax.ok and syntax.profile is None
        assert isinstance(guest.error, JSLRuntimeError)
        # The engine stays fully usable after a mixed batch.
        assert engine.run(SOURCE, name="after").console_output == ["total 6"]

    def test_budget_abort_is_captured_per_session(self):
        engine = Engine(seed=3)
        executor = EngineExecutor(engine)
        outcomes = executor.run_many(
            [
                RunRequest(
                    scripts="while (true) { }",
                    name="runaway",
                    budget=ExecutionBudget(max_steps=500),
                ),
                RunRequest(scripts=SOURCE, name="ok"),
            ],
            jobs=2,
        )
        runaway, ok = outcomes
        assert isinstance(runaway.error, BudgetExceeded)
        assert isinstance(runaway.error, ExecutionAborted)
        # The partial profile rides along, flagged as aborted.
        assert runaway.profile is not None
        assert runaway.profile.mode.endswith("-aborted")
        assert ok.ok and ok.profile.console_output == ["total 6"]


class TestSharedCaches:
    def test_stampede_through_run_many_compiles_once(self, monkeypatch):
        import repro.core.artifacts as artifacts_module

        calls = []
        real = artifacts_module.compile_source
        monkeypatch.setattr(
            artifacts_module,
            "compile_source",
            lambda source, filename: (calls.append(filename), real(source, filename))[1],
        )
        engine = Engine(seed=5)
        outcomes = EngineExecutor(engine).run_many(
            [
                RunRequest(scripts=[("hot.jsl", SOURCE)], name=f"r{i}")
                for i in range(12)
            ],
            jobs=6,
        )
        assert all(outcome.ok for outcome in outcomes)
        assert len(calls) == 1
        assert engine.artifacts.stats().builds == 1

    def test_use_store_pins_one_fetch_per_script(self):
        from tests.test_artifacts import CountingStore

        warm = Engine(seed=9)
        warm.run([("a.jsl", SOURCE)], name="warm")
        record = warm.extract_icrecord()

        store = CountingStore(record=record)
        engine = Engine(seed=9, record_store=store)
        outcomes = EngineExecutor(engine).run_many(
            [
                RunRequest(
                    scripts=[("a.jsl", SOURCE)], name=f"r{i}", use_store=True
                )
                for i in range(8)
            ],
            jobs=4,
        )
        assert store.gets == 1  # one GET fleet-wide, pinned to the artifact
        for outcome in outcomes:
            assert outcome.ok
            assert outcome.profile.mode == "reuse-ric"
            assert outcome.profile.counters.ric_validations > 0

    def test_sessions_remain_extractable(self):
        engine = Engine(seed=13)
        outcomes = EngineExecutor(engine).run_many(
            [RunRequest(scripts=[("a.jsl", SOURCE)], name="r")], jobs=1
        )
        record = outcomes[0].session.extract_icrecord()
        reused = engine.run([("a.jsl", SOURCE)], name="r", icrecord=record)
        assert reused.mode == "reuse-ric"
        assert reused.counters.ric_validations > 0
