"""Tests for RIC: extraction, the ICRecord, reuse validation and preloading.

Includes a direct reproduction of the paper's Figure 7 walk-through: the
same-control-flow Reuse run reuses state; the divergent run (branch taken)
validates nothing and stays correct.
"""

import pytest

from repro.ric.extraction import extract_icrecord
from repro.ric.serialize import (
    load_icrecord,
    record_from_json,
    record_size_bytes,
    record_to_json,
    save_icrecord,
)
from tests.helpers import run_cold_and_reused

#: The paper's running example (Figures 4 and 7).  The branch condition
#: comes from a separate config script so the figure7.jsl *content* is
#: identical across runs — divergence is a runtime control-flow fact, as in
#: the paper, not a source edit (edited sources are different scripts and
#: are refused outright by the content-identity gate).
FIGURE7_SOURCE = """
var o = {};
if (BRANCH) o.x = 1;
o.y = 2;
console.log(o.y);
"""


def figure7_scripts(branch):
    return [
        ("config.jsl", f"var BRANCH = {'true' if branch else 'false'};"),
        ("figure7.jsl", FIGURE7_SOURCE),
    ]


class TestExtraction:
    def test_record_covers_all_hidden_classes(self, engine):
        profile = engine.run("var o = {}; o.a = 1; o.b = 2;", name="t")
        record = engine.extract_icrecord()
        assert record.num_hidden_classes == profile.counters.hidden_classes_created

    def test_toast_has_builtin_entries(self, engine):
        engine.run("var x = 1;", name="t")
        record = engine.extract_icrecord()
        assert "builtin:EmptyObject" in record.toast
        assert "builtin:Math" in record.toast
        builtin_pairs = record.toast["builtin:EmptyObject"]
        assert builtin_pairs[0].incoming_hcid is None

    def test_toast_excludes_global_object(self, engine):
        engine.run("var x = 1; var y = 2;", name="t")
        record = engine.extract_icrecord()
        assert "builtin:global" not in record.toast

    def test_toast_site_entries_record_transitions(self, engine):
        engine.run("var o = {}; o.a = 1;", name="t")
        record = engine.extract_icrecord()
        site_keys = [k for k in record.toast if k.endswith("named_store")]
        assert site_keys, "expected a triggering store site in the TOAST"
        pair = record.toast[site_keys[0]][0]
        assert pair.transition_property == "a"
        assert pair.incoming_hcid is not None

    def test_dependents_require_ci_handlers(self, engine):
        engine.run(
            """
            function C() { this.v = 1; }
            var a = new C();
            var b = new C();
            function read(o) { return o.v; }
            read(a); read(b);
            """,
            name="t",
        )
        record = engine.extract_icrecord()
        dependents = [d for row in record.hcvt for d in row.dependents]
        assert dependents
        for dependent in dependents:
            handler = record.handlers[dependent.handler_id]
            assert handler["kind"] in (
                "load_field",
                "store_field",
                "load_array_length",
                "load_element",
                "store_element",
            )

    def test_cd_dependents_tracked_separately(self, engine):
        engine.run(
            """
            function C() {}
            C.prototype.m = 7;
            var o = new C();
            var x = o.m;
            """,
            name="t",
        )
        record = engine.extract_icrecord()
        cd_sites = [s for row in record.hcvt for s in row.cd_dependent_sites]
        assert cd_sites, "prototype-chain load should be a CD dependent"

    def test_handler_store_deduplicates(self, engine):
        engine.run(
            """
            var a = {v: 1};
            var b = {w: 0, v: 2};
            function r1(o) { return o.v; }
            function r2(o) { return o.v; }
            r1(a); r2(a); r1(b); r2(b);
            """,
            name="t",
        )
        record = engine.extract_icrecord()
        texts = [tuple(sorted(h.items())) for h in record.handlers]
        assert len(texts) == len(set(texts))

    def test_ctor_hidden_classes_get_toast_entries(self, engine):
        engine.run("function C() {} var o = new C();", name="t")
        record = engine.extract_icrecord()
        ctor_keys = [k for k in record.toast if k.startswith("ctor:")]
        assert len(ctor_keys) >= 1

    def test_extraction_requires_a_run(self, engine):
        with pytest.raises(RuntimeError):
            engine.extract_icrecord()

    def test_extraction_time_recorded(self, engine):
        engine.run("var x = 1;", name="t")
        record = engine.extract_icrecord()
        assert record.extraction_time_ms > 0


class TestFigure7:
    """The paper's §5.3 walk-through."""

    SHARED = """
    var o = {};
    if (false) o.x = 1;
    o.y = 2;
    console.log(o.y);
    """

    def test_same_control_flow_reuses_state(self, engine):
        engine.run(figure7_scripts(branch=False), name="fig7")
        record = engine.extract_icrecord()
        reuse = engine.run(figure7_scripts(branch=False), name="fig7", icrecord=record)
        # The load at L1 was preloaded when S2's transition validated.
        assert reuse.counters.ric_preloads >= 1
        assert reuse.counters.ic_hits_on_preloaded >= 1
        assert reuse.console_output == ["2"]

    def test_divergent_control_flow_stays_correct(self, engine):
        engine.run(figure7_scripts(branch=False), name="fig7")
        record = engine.extract_icrecord()
        # Replace the script with the branch-taken variant: object now has
        # {x, y}, a different hidden-class chain (Figure 7(e)).
        divergent = engine.run(
            figure7_scripts(branch=True), name="fig7", icrecord=record
        )
        assert divergent.console_output == ["2"]
        # S2's transition cannot validate: its incoming class differs.
        assert divergent.counters.ric_divergences >= 1

    def test_divergence_never_preloads_wrong_slots(self, engine):
        engine.run(figure7_scripts(branch=False), name="fig7")
        record = engine.extract_icrecord()
        engine.run(figure7_scripts(branch=True), name="fig7", icrecord=record)
        # L1 (the load of o.y) must not have been preloaded with the stale
        # offset — the transition chain diverged.  (Builtin-validated
        # dependents like console.log may still legitimately preload.)
        feedback = engine.last_run.feedback
        l1_sites = [
            site
            for site in feedback.all_sites()
            if site.info.name == "y" and site.info.kind.value == "named_load"
        ]
        assert l1_sites
        for site in l1_sites:
            assert not site.preloaded_addresses


class TestReuseRuns:
    WORKLOAD = """
    function Vec(x, y) { this.x = x; this.y = y; }
    Vec.prototype.dot = function (o) { return this.x * o.x + this.y * o.y; };
    function len2(v) { return v.dot(v); }
    function sum(v, w) { return v.x + w.x + v.y + w.y; }
    var a = new Vec(1, 2);
    var b = new Vec(3, 4);
    console.log(len2(a), len2(b), sum(a, b));
    """

    def test_ric_reduces_misses_and_instructions(self):
        runs = run_cold_and_reused(self.WORKLOAD, name="vec")
        assert runs.reused.counters.ic_misses < runs.cold.counters.ic_misses
        assert runs.reused.total_instructions < runs.cold.total_instructions
        assert runs.outputs_identical

    def test_conventional_reuse_equals_initial_ic_behavior(self, engine):
        initial = engine.run(self.WORKLOAD, name="vec")
        conventional = engine.run(self.WORKLOAD, name="vec")
        assert initial.counters.ic_misses == conventional.counters.ic_misses
        assert initial.total_instructions == conventional.total_instructions

    def test_reuse_run_addresses_differ_but_validation_succeeds(self, engine):
        engine.run(self.WORKLOAD, name="vec")
        record = engine.extract_icrecord()
        runtime_a = engine.last_run.runtime
        ric = engine.run(self.WORKLOAD, name="vec", icrecord=record)
        runtime_b = engine.last_run.runtime
        addresses_a = {hc.index: hc.address for hc in runtime_a.hidden_classes.all_classes}
        addresses_b = {hc.index: hc.address for hc in runtime_b.hidden_classes.all_classes}
        assert addresses_a != addresses_b  # the paper's premise
        assert ric.counters.ric_validations > 0

    def test_code_cache_hit_on_reuse(self, engine):
        initial = engine.run(self.WORKLOAD, name="vec")
        reuse = engine.run(self.WORKLOAD, name="vec")
        assert initial.code_cache_misses == 1
        assert reuse.code_cache_hits == 1

    def test_record_applies_to_partially_loaded_workload(self, engine):
        scripts = [
            ("one.jsl", "function C() { this.v = 1; } var a = new C(); console.log(a.v);"),
            ("two.jsl", "var b = new C(); console.log(b.v);"),
        ]
        engine.run(scripts, name="two-files")
        record = engine.extract_icrecord()
        # Reuse with only the first script: dependents in two.jsl are simply
        # not found; nothing breaks.
        only_first = engine.run([scripts[0]], name="one-file", icrecord=record)
        assert only_first.console_output == ["1"]

    def test_ric_bookkeeping_costs_are_charged(self):
        runs = run_cold_and_reused(self.WORKLOAD, name="vec")
        assert runs.reused.counters.instructions["ric"] > 0

    def test_megamorphic_sites_not_overfilled_by_preloads(self):
        source = """
        function read(o) { return o.v; }
        var shapes = [
          {v: 1}, {a: 0, v: 2}, {b: 0, v: 3}, {c: 0, v: 4},
          {d: 0, v: 5}, {e: 0, v: 6}, {f: 0, v: 7}
        ];
        var total = 0;
        for (var i = 0; i < shapes.length; i++) { total += read(shapes[i]); }
        console.log(total);
        """
        runs = run_cold_and_reused(source, name="mega")
        assert runs.reused.console_output == ["28"]


class TestSerialization:
    def test_round_trip_preserves_everything(self, engine, tmp_path):
        engine.run(TestReuseRuns.WORKLOAD, name="vec")
        record = engine.extract_icrecord()
        path = tmp_path / "record.json"
        save_icrecord(record, path)
        loaded = load_icrecord(path)
        assert record_to_json(loaded) == record_to_json(record)

    def test_loaded_record_still_works(self, engine, tmp_path):
        engine.run(TestReuseRuns.WORKLOAD, name="vec")
        record = engine.extract_icrecord()
        path = tmp_path / "record.json"
        save_icrecord(record, path)
        ric = engine.run(TestReuseRuns.WORKLOAD, name="vec", icrecord=load_icrecord(path))
        assert ric.counters.ic_hits_on_preloaded > 0

    def test_version_check(self):
        with pytest.raises(ValueError):
            record_from_json({"version": 999})

    def test_record_size_positive_and_stable(self, engine):
        engine.run("var o = {}; o.a = 1;", name="t")
        record = engine.extract_icrecord()
        assert record_size_bytes(record) == record_size_bytes(record) > 0

    def test_stats_shape(self, engine):
        engine.run("var o = {}; o.a = 1;", name="t")
        record = engine.extract_icrecord()
        stats = record.stats()
        assert set(stats) == {
            "hidden_classes",
            "toast_entries",
            "toast_pairs",
            "dependent_links",
            "cd_dependent_links",
            "handlers",
            "slot_sites",
            "poly_slot_sites",
            "site_slot_entries",
            "feedback_sites",
            "feedback_tombstones",
            "extraction_time_ms",
        }


class TestCrossRunSoundness:
    def test_outputs_identical_across_many_seeds(self):
        source = TestReuseRuns.WORKLOAD
        for seed in range(5):
            runs = run_cold_and_reused(source, seed=seed, name="vec")
            assert runs.outputs_identical

    def test_record_from_different_program_is_harmless(self):
        runs = run_cold_and_reused(
            TestReuseRuns.WORKLOAD,
            seed=9,
            name="vec",
            record_from="var o = {}; o.zz = 1;",
        )
        assert runs.reused.console_output == ["5 25 10"]
        assert runs.outputs_identical


class TestContentIdentityGate:
    """Regression for a soundness hole the program fuzzer found: a record
    extracted from script A must not apply to a *different* script B that
    shares A's filename and coincidentally aligned source positions.
    Records are content-keyed, like the bytecode cache."""

    TEMPLATE = """var log = [];
var obj1 = {beta: 0, gamma: 0, delta: 0};
log.push(obj1.PROP);
console.log(log.join(","));
"""

    def test_changed_source_same_positions_is_refused(self):
        # A reads .beta (exists, offset 0); B reads .alpha (absent) at the
        # exact same position.  Without content keying, A's load_field[0]
        # would be preloaded into B's site and read beta's value.
        source_a = self.TEMPLATE.replace("PROP", "beta")
        source_b = self.TEMPLATE.replace("PROP", "alpha")
        runs = run_cold_and_reused(
            [("<script>", source_b)],
            seed=13,
            name="b",
            record_from=[("<script>", source_a)],
        )
        assert runs.cold.console_output == [""]  # alpha is absent
        assert runs.outputs_identical
        assert runs.reused.counters.ric_preloads == 0

    def test_matching_source_still_reuses(self):
        source = self.TEMPLATE.replace("PROP", "beta")
        runs = run_cold_and_reused([("<script>", source)], seed=13, name="a")
        assert runs.reused.counters.ric_preloads > 0

    def test_mixed_workload_trusts_only_matching_files(self):
        lib = "function C() { this.v = 1; } var o = new C(); console.log(o.v);"
        app_v1 = "var x = {k: 1}; console.log(x.k);"
        app_v2 = "var x = {z: 9}; console.log(x.z);"  # same positions, new shape
        # app.jsl changed; lib.jsl did not.  Reuse must help lib and ignore app.
        runs = run_cold_and_reused(
            [("lib.jsl", lib), ("app.jsl", app_v2)],
            seed=13,
            name="v2",
            record_from=[("lib.jsl", lib), ("app.jsl", app_v1)],
        )
        assert runs.reused.console_output == ["1", "9"]
        assert runs.reused.counters.ric_validations > 0  # lib still validates
