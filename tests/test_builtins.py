"""Tests for the built-in objects, exercised through guest code."""

from tests.helpers import console_of, eval_jsl, run_jsl


class TestObjectBuiltins:
    def test_object_keys(self):
        assert console_of(
            "console.log(Object.keys({a: 1, b: 2}).join(','));"
        ) == ["a,b"]

    def test_object_keys_includes_elements_first(self):
        src = """
        var o = {name: "n"};
        o[0] = "zero";
        console.log(Object.keys(o).join(","));
        """
        assert console_of(src) == ["0,name"]

    def test_object_assign(self):
        src = """
        var target = {a: 1};
        var result = Object.assign(target, {b: 2}, {c: 3, a: 9});
        console.log(result === target, target.a, target.b, target.c);
        """
        assert console_of(src) == ["true 9 2 3"]

    def test_object_constructor(self):
        assert console_of(
            "var o = new Object(); o.x = 5; console.log(o.x);"
        ) == ["5"]

    def test_to_string(self):
        assert console_of("console.log(({}).toString());") == ["[object Object]"]

    def test_is_prototype_of(self):
        src = """
        function C() {}
        var o = new C();
        console.log(C.prototype.isPrototypeOf(o), Object.keys({}).length);
        """
        assert console_of(src) == ["true 0"]


class TestArrayBuiltins:
    def test_push_pop(self):
        src = """
        var a = [];
        a.push(1); a.push(2, 3);
        var popped = a.pop();
        console.log(a.join(","), popped, a.length);
        """
        assert console_of(src) == ["1,2 3 2"]

    def test_shift_unshift(self):
        src = """
        var a = [2, 3];
        a.unshift(1);
        var first = a.shift();
        console.log(first, a.join(","));
        """
        assert console_of(src) == ["1 2,3"]

    def test_join_default_separator(self):
        assert console_of("console.log([1,2,3].join());") == ["1,2,3"]

    def test_index_of(self):
        assert console_of("console.log([5,6,7].indexOf(6), [5].indexOf(9));") == ["1 -1"]

    def test_slice_with_negatives(self):
        src = "var a = [0,1,2,3,4]; console.log(a.slice(1,3).join(','), a.slice(-2).join(','));"
        assert console_of(src) == ["1,2 3,4"]

    def test_concat(self):
        assert console_of("console.log([1].concat([2,3], 4).join(','));") == ["1,2,3,4"]

    def test_for_each_with_index(self):
        src = """
        var seen = [];
        ["a","b"].forEach(function (v, i) { seen.push(i + ":" + v); });
        console.log(seen.join(","));
        """
        assert console_of(src) == ["0:a,1:b"]

    def test_map_filter_reduce(self):
        src = """
        var doubled = [1,2,3].map(function (v) { return v * 2; });
        var evens = [1,2,3,4].filter(function (v) { return v % 2 === 0; });
        var total = [1,2,3,4].reduce(function (m, v) { return m + v; }, 0);
        var noInit = [5,6].reduce(function (m, v) { return m + v; });
        console.log(doubled.join(","), evens.join(","), total, noInit);
        """
        assert console_of(src) == ["2,4,6 2,4 10 11"]

    def test_reverse_in_place(self):
        assert console_of("var a = [1,2,3]; a.reverse(); console.log(a.join(','));") == ["3,2,1"]

    def test_array_constructor_with_length(self):
        assert console_of("console.log(new Array(3).length, Array.isArray([]));") == ["3 true"]

    def test_reduce_empty_without_initial_throws(self):
        src = """
        var msg = "";
        try { [].reduce(function (a, b) { return a; }); } catch (e) { msg = e.name; }
        console.log(msg);
        """
        assert console_of(src) == ["TypeError"]


class TestMathBuiltins:
    def test_rounding_family(self):
        assert console_of(
            "console.log(Math.floor(2.7), Math.ceil(2.1), Math.round(2.5), Math.abs(-3));"
        ) == ["2 3 3 3"]

    def test_sqrt_pow(self):
        assert console_of("console.log(Math.sqrt(16), Math.pow(2, 10));") == ["4 1024"]

    def test_min_max_varargs(self):
        assert console_of("console.log(Math.min(3,1,2), Math.max(3,1,2));") == ["1 3"]

    def test_constants(self):
        assert eval_jsl("Math.PI > 3.14 && Math.PI < 3.15") is True
        assert eval_jsl("Math.E > 2.71 && Math.E < 2.72") is True

    def test_random_in_range_and_seeded(self):
        result = run_jsl("var r = Math.random();", seed=5)
        value = result.runtime.global_object.get_own("r")[1]
        assert 0.0 <= value < 1.0
        again = run_jsl("var r = Math.random();", seed=5)
        assert again.runtime.global_object.get_own("r")[1] == value


class TestJSONBuiltins:
    def test_stringify_nested(self):
        src = """
        console.log(JSON.stringify({a: 1, s: "x", arr: [1, null, true], o: {b: 2}}));
        """
        assert console_of(src) == ['{"a":1,"s":"x","arr":[1,null,true],"o":{"b":2}}']

    def test_stringify_skips_functions_and_undefined(self):
        src = "console.log(JSON.stringify({f: function () {}, u: undefined, k: 1}));"
        assert console_of(src) == ['{"k":1}']

    def test_stringify_nan_is_null(self):
        assert console_of("console.log(JSON.stringify([NaN, Infinity]));") == ["[null,null]"]

    def test_parse_round_trip(self):
        src = """
        var o = JSON.parse('{"a": [1, "two", false], "n": null}');
        console.log(o.a[1], o.a[2], o.n === null, JSON.stringify(o));
        """
        assert console_of(src) == ['two false true {"a":[1,"two",false],"n":null}']

    def test_parse_error_is_catchable(self):
        src = """
        var msg = "";
        try { JSON.parse("{oops"); } catch (e) { msg = "bad"; }
        console.log(msg);
        """
        assert console_of(src) == ["bad"]


class TestConsoleAndErrors:
    def test_console_levels(self):
        result = run_jsl("console.log('a'); console.warn('b'); console.error('c');")
        assert result.console == ["a", "[warn] b", "[error] c"]

    def test_error_hierarchy_names(self):
        src = """
        var e1 = new Error("m1");
        var e2 = new TypeError("m2");
        var e3 = new RangeError("m3");
        console.log(e1.message, e2.name, e3.name);
        """
        assert console_of(src) == ["m1 TypeError RangeError"]

    def test_string_builtins(self):
        assert console_of("console.log(String(42), String.fromCharCode(72, 105));") == [
            "42 Hi"
        ]

    def test_number_builtin(self):
        assert console_of("console.log(Number('3.5') + 1, Number(true));") == ["4.5 1"]

    def test_global_this(self):
        assert console_of("globalThis.viaGlobal = 7; console.log(viaGlobal);") == ["7"]


class TestDate:
    def test_date_now_uses_time_source(self):
        from repro.core.engine import Engine

        engine = Engine(seed=1)
        profile = engine.run(
            "console.log(Date.now());", name="d", time_source=lambda: 12.0
        )
        assert profile.console_output == ["12000"]

    def test_new_date_records_time(self):
        from repro.core.engine import Engine

        engine = Engine(seed=1)
        profile = engine.run(
            "var d = new Date(); console.log(d.time);",
            name="d",
            time_source=lambda: 2.5,
        )
        assert profile.console_output == ["2500"]
