"""Unit tests for the jsl lexer."""

import pytest

from repro.lang.errors import JSLSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [token.kind for token in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [token.value for token in tokenize(source)][:-1]


class TestNumbers:
    def test_integer(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].value == 42.0

    def test_decimal(self):
        assert tokenize("3.25")[0].value == 3.25

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == 0.5

    def test_trailing_dot(self):
        assert tokenize("7.")[0].value == 7.0

    def test_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0

    def test_negative_exponent(self):
        assert tokenize("25e-2")[0].value == 0.25

    def test_signed_exponent(self):
        assert tokenize("2E+2")[0].value == 200.0

    def test_hex(self):
        assert tokenize("0xFF")[0].value == 255.0

    def test_hex_lowercase(self):
        assert tokenize("0xdeadBEEF")[0].value == float(0xDEADBEEF)

    def test_malformed_hex_raises(self):
        with pytest.raises(JSLSyntaxError):
            tokenize("0x")

    def test_malformed_exponent_raises(self):
        with pytest.raises(JSLSyntaxError):
            tokenize("1e+")


class TestStrings:
    def test_double_quoted(self):
        assert tokenize('"hello"')[0].value == "hello"

    def test_single_quoted(self):
        assert tokenize("'world'")[0].value == "world"

    def test_escapes(self):
        assert tokenize(r'"a\nb\tc"')[0].value == "a\nb\tc"

    def test_quote_escape(self):
        assert tokenize(r'"say \"hi\""')[0].value == 'say "hi"'

    def test_unicode_escape(self):
        assert tokenize(r'"A"')[0].value == "A"

    def test_hex_escape(self):
        assert tokenize(r'"\x41"')[0].value == "A"

    def test_unknown_escape_passthrough(self):
        assert tokenize(r'"\q"')[0].value == "q"

    def test_unterminated_raises(self):
        with pytest.raises(JSLSyntaxError):
            tokenize('"oops')

    def test_newline_in_string_raises(self):
        with pytest.raises(JSLSyntaxError):
            tokenize('"a\nb"')

    def test_bad_unicode_escape_raises(self):
        with pytest.raises(JSLSyntaxError):
            tokenize(r'"\u00g1"')


class TestIdentifiersAndKeywords:
    def test_identifier(self):
        token = tokenize("fooBar_3$")[0]
        assert token.kind is TokenKind.IDENT
        assert token.value == "fooBar_3$"

    def test_dollar_identifier(self):
        assert tokenize("$")[0].kind is TokenKind.IDENT

    @pytest.mark.parametrize(
        "word,kind",
        [
            ("var", TokenKind.VAR),
            ("function", TokenKind.FUNCTION),
            ("return", TokenKind.RETURN),
            ("new", TokenKind.NEW),
            ("typeof", TokenKind.TYPEOF),
            ("instanceof", TokenKind.INSTANCEOF),
            ("null", TokenKind.NULL),
            ("undefined", TokenKind.UNDEFINED),
            ("true", TokenKind.TRUE),
            ("false", TokenKind.FALSE),
            ("switch", TokenKind.SWITCH),
            ("finally", TokenKind.FINALLY),
        ],
    )
    def test_keywords(self, word, kind):
        assert tokenize(word)[0].kind is kind

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("variable")[0].kind is TokenKind.IDENT


class TestOperators:
    def test_maximal_munch_shift(self):
        assert kinds("a >>> b") == [TokenKind.IDENT, TokenKind.USHR, TokenKind.IDENT]

    def test_strict_equality(self):
        assert kinds("a === b")[1] is TokenKind.STRICT_EQ

    def test_strict_inequality(self):
        assert kinds("a !== b")[1] is TokenKind.STRICT_NEQ

    def test_increment_vs_plus(self):
        assert kinds("a ++ + b") == [
            TokenKind.IDENT,
            TokenKind.PLUS_PLUS,
            TokenKind.PLUS,
            TokenKind.IDENT,
        ]

    def test_compound_assignment(self):
        assert kinds("a += 1")[1] is TokenKind.PLUS_ASSIGN

    def test_logical_operators(self):
        assert kinds("a && b || !c") == [
            TokenKind.IDENT,
            TokenKind.AND,
            TokenKind.IDENT,
            TokenKind.OR,
            TokenKind.NOT,
            TokenKind.IDENT,
        ]

    def test_unexpected_character_raises(self):
        with pytest.raises(JSLSyntaxError):
            tokenize("a # b")


class TestTriviaAndPositions:
    def test_line_comment(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(JSLSyntaxError):
            tokenize("a /* never closed")

    def test_positions_track_lines_and_columns(self):
        tokens = tokenize("a\n  bb\n    c")
        assert (tokens[0].position.line, tokens[0].position.column) == (1, 1)
        assert (tokens[1].position.line, tokens[1].position.column) == (2, 3)
        assert (tokens[2].position.line, tokens[2].position.column) == (3, 5)

    def test_position_filename(self):
        token = tokenize("x", filename="lib.jsl")[0]
        assert token.position.filename == "lib.jsl"
        assert str(token.position) == "lib.jsl:1:1"

    def test_empty_input_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_eof_is_idempotent(self):
        tokens = tokenize("  \n\t ")
        assert tokens[-1].kind is TokenKind.EOF
