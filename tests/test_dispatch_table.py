"""The dispatch table is total, convention-bound, and semantics-preserving.

Guards the PR-2 interpreter rewrite:

* every :class:`Op` resolves to its own ``_op_<name>`` handler — adding an
  opcode without a handler must fail loudly (at VM construction *and*
  here),
* gap values between opcodes stay "unknown opcode" errors,
* the monomorphic GET_PROP/SET_PROP fast paths are observationally
  identical to the generic miss path: same output, same counters (to the
  instruction), same ICVector transitions.
"""

from __future__ import annotations

import pytest

from repro.bytecode.compiler import compile_source
from repro.bytecode.opcodes import Op
from repro.ic.icvector import FeedbackState
from repro.ic.miss import ICRuntime
from repro.interpreter.vm import VM
from repro.lang.errors import JSLRuntimeError
from repro.runtime.builtins import install_builtins
from repro.runtime.context import Runtime
from repro.stats.counters import Counters


def make_vm(fastpaths: bool = True) -> VM:
    runtime = Runtime(seed=3)
    counters = Counters()
    runtime.hidden_classes.on_created = lambda hc: None
    install_builtins(runtime)
    return VM(
        runtime, counters, ICRuntime(runtime, counters), FeedbackState(),
        fastpaths=fastpaths,
    )


class TestTableConstruction:
    def test_every_opcode_has_its_own_handler(self):
        vm = make_vm()
        names = set()
        for op in Op:
            handler = vm.dispatch_handler(op)
            expected = f"_op_{op.name.lower()}"
            assert handler.__func__.__name__ == expected, (
                f"{op.name} is bound to {handler.__func__.__name__}"
            )
            names.add(handler.__func__.__name__)
        # Injective: no two opcodes share a handler method.
        assert len(names) == len(list(Op))

    def test_gap_values_raise_unknown_opcode(self):
        vm = make_vm()
        gaps = [value for value in range(max(Op) + 1) if value not in set(Op)]
        assert gaps, "Op values currently have gaps; update this test if not"
        for value in gaps:
            handler = vm._dispatch[value]
            assert handler.__func__.__name__ == "_op_invalid"
        with pytest.raises(JSLRuntimeError, match="unknown opcode"):
            vm._dispatch[gaps[0]](None, 0, 0, 0)

    def test_new_opcode_without_handler_fails_at_construction(self):
        class IncompleteVM(VM):
            _op_load_const = None  # simulates Op.LOAD_CONST with no handler

        with pytest.raises(NotImplementedError, match="LOAD_CONST"):
            _construct(IncompleteVM)

    def test_fastpaths_flag_swaps_in_generic_property_handlers(self):
        fast = make_vm(fastpaths=True)
        slow = make_vm(fastpaths=False)
        assert fast.dispatch_handler(Op.GET_PROP).__func__.__name__ == "_op_get_prop"
        assert fast.dispatch_handler(Op.SET_PROP).__func__.__name__ == "_op_set_prop"
        assert (
            slow.dispatch_handler(Op.GET_PROP).__func__.__name__
            == "_op_get_prop_generic"
        )
        assert (
            slow.dispatch_handler(Op.SET_PROP).__func__.__name__
            == "_op_set_prop_generic"
        )


def _construct(vm_class) -> VM:
    runtime = Runtime(seed=3)
    counters = Counters()
    runtime.hidden_classes.on_created = lambda hc: None
    install_builtins(runtime)
    return vm_class(
        runtime, counters, ICRuntime(runtime, counters), FeedbackState()
    )


# -- fast path vs generic path differential -----------------------------------

#: Exercises every IC state the sites can reach: monomorphic hits,
#: polymorphic and megamorphic dispatch, add-transitions, prototype-chain
#: loads, not-found loads, and constructor-"prototype" store invalidation.
PROPERTY_STRESS = """
function read(o) { return o.v; }
function write(o, x) { o.v = x; }

var mono = { v: 1 };
var total = 0;
for (var i = 0; i < 40; i++) { write(mono, i); total += read(mono); }
console.log("mono", total);

function readPoly(o) { return o.v; }
var shapes = [ { v: 1 }, { a: 0, v: 2 }, { b: 0, c: 0, v: 3 } ];
var poly = 0;
for (var j = 0; j < 30; j++) { poly += readPoly(shapes[j % 3]); }
console.log("poly", poly);

var mega = [
  { v: 1 }, { m1: 0, v: 2 }, { m2: 0, v: 3 },
  { m3: 0, v: 4 }, { m4: 0, v: 5 }, { m5: 0, v: 6 }
];
var megaTotal = 0;
for (var k = 0; k < 24; k++) { megaTotal += read(mega[k % 6]); }
console.log("mega", megaTotal);

function Point(x, y) { this.x = x; this.y = y; }
Point.prototype.norm1 = function () { return this.x + this.y; };
var points = [];
for (var p = 0; p < 10; p++) { points.push(new Point(p, p + 1)); }
var norms = 0;
for (var q = 0; q < points.length; q++) { norms += points[q].norm1(); }
console.log("proto", norms);

var sparse = { present: 1 };
var misses = 0;
for (var r = 0; r < 8; r++) {
  if (sparse.absent === undefined) { misses++; }
}
console.log("notfound", misses, sparse.present);

var grown = {};
grown.a = 1; grown.b = 2; grown.c = 3; grown.d = 4;
console.log("transitions", grown.a + grown.b + grown.c + grown.d);
"""


def run_stress(fastpaths: bool):
    vm = make_vm(fastpaths=fastpaths)
    code = compile_source(PROPERTY_STRESS, "stress.jsl")
    vm.feedback.register_script(code)
    vm.run_code(code)
    return vm


def ic_transcript(vm: VM) -> list[tuple]:
    """Canonical per-site IC state: comparable across two identical runs
    (hidden-class addresses are deterministic for a fixed seed)."""
    transcript = []
    for site in vm.feedback.all_sites():
        transcript.append(
            (
                site.info.site_key,
                site.state.value,
                tuple(
                    (hc.address, handler.kind, handler.is_context_independent)
                    for hc, handler in site.slots
                ),
            )
        )
    return transcript


class TestFastPathEquivalence:
    @pytest.fixture(scope="class")
    def vms(self):
        return run_stress(fastpaths=True), run_stress(fastpaths=False)

    def test_same_console_output(self, vms):
        fast, slow = vms
        assert fast.runtime.console_output == slow.runtime.console_output
        assert len(fast.runtime.console_output) == 6

    def test_same_counters_to_the_instruction(self, vms):
        fast, slow = vms
        assert fast.counters.as_dict() == slow.counters.as_dict()
        assert fast.counters.ic_hits > 0 and fast.counters.ic_misses > 0

    def test_same_icvector_transitions(self, vms):
        fast, slow = vms
        assert ic_transcript(fast) == ic_transcript(slow)
        states = {entry[1] for entry in ic_transcript(fast)}
        # The stress program must actually reach all three warm states.
        assert {"monomorphic", "polymorphic", "megamorphic"} <= states
