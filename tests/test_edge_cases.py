"""Focused edge-case tests across sparse corners of the system."""

import pytest

from repro.core.engine import Engine
from repro.lang.errors import JSLSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind
from repro.runtime.values import number_to_string

from tests.helpers import console_of, eval_jsl, run_jsl


class TestLexerCorners:
    def test_number_then_member_access(self):
        # `1.` keeps the dot for member access when followed by an identifier.
        tokens = tokenize("1.x")
        assert [t.kind for t in tokens[:3]] == [
            TokenKind.NUMBER,
            TokenKind.DOT,
            TokenKind.IDENT,
        ]

    def test_lone_zero(self):
        assert tokenize("0")[0].value == 0.0

    def test_number_at_eof_with_exponent_marker_absent(self):
        assert tokenize("12")[0].value == 12.0

    def test_surrogate_pair_combines(self):
        token = tokenize('"\\ud800\\udc00"')[0]
        assert token.value == "\U00010000"

    def test_lone_high_surrogate_kept(self):
        token = tokenize('"\\ud800x"')[0]
        assert token.value == "\ud800x"

    def test_line_continuation_in_string(self):
        assert tokenize('"a\\\nb"')[0].value == "ab"


class TestNumberFormatting:
    def test_huge_integral_numbers_keep_repr(self):
        # Beyond 1e21 JS switches to exponent form; we use repr.
        assert "e" in number_to_string(1e22) or "." in number_to_string(1e22)

    def test_negative_zero(self):
        assert number_to_string(-0.0) == "0"

    def test_string_number_roundtrip_in_guest(self):
        assert console_of("console.log(0.1 + 0.2 === 0.3, 0.5 + 0.25);") == [
            "false 0.75"
        ]


class TestGuestSemanticsCorners:
    def test_empty_function_call_expression_statement(self):
        assert run_jsl("(function () {})();").console == []

    def test_object_with_numeric_literal_keys(self):
        assert console_of("var o = {1: 'one', 2: 'two'}; console.log(o[1], o['2']);") == [
            "one two"
        ]

    def test_chained_new(self):
        src = """
        function Wrapper(v) { this.v = v; }
        Wrapper.prototype.unwrap = function () { return this.v; };
        console.log(new Wrapper(new Wrapper(7).unwrap()).unwrap());
        """
        assert console_of(src) == ["7"]

    def test_array_of_functions_invoked_by_index(self):
        src = """
        var ops = [
          function (a, b) { return a + b; },
          function (a, b) { return a * b; }
        ];
        console.log(ops[0](2, 3), ops[1](2, 3));
        """
        assert console_of(src) == ["5 6"]

    def test_deeply_nested_object_literals(self):
        src = "var o = {a:{b:{c:{d:{e: 5}}}}}; console.log(o.a.b.c.d.e);"
        assert console_of(src) == ["5"]

    def test_for_in_mutation_during_iteration_is_safe(self):
        # The iterator snapshots keys; additions during iteration are not
        # visited (documented behaviour; JS leaves this implementation-defined).
        src = """
        var o = {a: 1, b: 2};
        var visited = [];
        for (var k in o) { visited.push(k); o["new_" + k] = 0; }
        console.log(visited.join(","));
        """
        assert console_of(src) == ["a,b"]

    def test_function_expression_name_visible_inside_only(self):
        src = """
        var f = function named() { return typeof named; };
        console.log(f(), typeof named);
        """
        out = console_of(src)
        # The inner binding of a named function expression is not implemented
        # as a self-reference in jsl; both resolve via normal scoping.
        assert out[0].endswith("undefined")

    def test_sparse_array_join_skips_holes(self):
        assert console_of("var a = []; a[2] = 'x'; console.log(a.join('-'));") == [
            "--x"
        ]

    def test_string_comparison_is_lexicographic(self):
        assert eval_jsl("'apple' < 'banana'") is True
        assert eval_jsl("'Z' < 'a'") is True  # uppercase sorts first

    def test_instanceof_after_prototype_swap(self):
        src = """
        function C() {}
        var before = new C();
        C.prototype = {};
        console.log(before instanceof C, new C() instanceof C);
        """
        assert console_of(src) == ["false true"]

    def test_megamorphic_store_site_remains_correct(self):
        src = """
        function setV(o, v) { o.v = v; }
        var shapes = [
          {}, {a: 0}, {b: 0}, {c: 0}, {d: 0}, {e: 0}
        ];
        for (var i = 0; i < shapes.length; i++) { setV(shapes[i], i); }
        var total = 0;
        for (var j = 0; j < shapes.length; j++) { total += shapes[j].v; }
        console.log(total);
        """
        assert console_of(src) == ["15"]

    def test_exception_in_native_callback_propagates(self):
        src = """
        var msg = "";
        try {
          [1, 2, 3].forEach(function (v) { if (v === 2) throw "stop@" + v; });
        } catch (e) { msg = e; }
        console.log(msg);
        """
        assert console_of(src) == ["stop@2"]


class TestEngineCorners:
    def test_empty_script(self, engine):
        profile = engine.run("", name="empty")
        assert profile.console_output == []
        assert profile.counters.ic_accesses == 0

    def test_comment_only_script(self, engine):
        profile = engine.run("// nothing here\n/* at all */", name="c")
        assert profile.console_output == []

    def test_record_of_empty_script_is_harmless(self, engine):
        engine.run("", name="empty")
        record = engine.extract_icrecord()
        profile = engine.run("var o = {a: 1}; console.log(o.a);", name="real", icrecord=record)
        assert profile.console_output == ["1"]

    def test_same_script_twice_in_one_workload(self, engine):
        scripts = [("a.jsl", "counterG = (typeof counterG === 'number' ? counterG : 0) + 1;")] * 2
        profile = engine.run(
            scripts + [("b.jsl", "console.log(counterG);")], name="twice"
        )
        assert profile.console_output == ["2"]

    def test_parse_error_position_reported(self, engine):
        with pytest.raises(JSLSyntaxError) as exc_info:
            engine.run([("bad.jsl", "var x = 1;\nvar = ;")], name="bad")
        assert exc_info.value.position.line == 2

    def test_unicode_identifiers_not_supported_but_strings_are(self, engine):
        profile = engine.run('console.log("héllo wörld \\u00e9");', name="u")
        assert profile.console_output == ["héllo wörld é"]


class TestHarnessReportingCorners:
    def test_render_table_handles_ints_floats_strings(self):
        from repro.harness.reporting import render_table

        text = render_table(
            "T",
            [("A", "a"), ("B", "b"), ("C", "c")],
            [{"a": 1, "b": 2.5, "c": "x"}],
        )
        assert "2.50" in text and "x" in text

    def test_render_bars_empty_rows(self):
        from repro.harness.reporting import render_bars

        text = render_bars("B", [], value_key="v")
        assert text.startswith("B")

    def test_memory_overhead_zero_heap(self):
        from repro.ric.icrecord import ICRecord
        from repro.stats.memory import MemoryOverhead

        overhead = MemoryOverhead(icrecord_bytes=10, heap_bytes=0)
        assert overhead.overhead_fraction == 0.0
        del ICRecord


class TestReceiverBinding:
    def test_keyed_method_call_binds_receiver(self):
        src = """
        var obj = {
          tag: "target",
          m: function () { return this.tag; }
        };
        var key = "m";
        console.log(obj[key]());
        """
        assert console_of(src) == ["target"]

    def test_chained_method_calls_rebind_each_step(self):
        src = """
        function Builder() { this.parts = []; }
        Builder.prototype.add = function (p) { this.parts.push(p); return this; };
        Builder.prototype.build = function () { return this.parts.join("-"); };
        console.log(new Builder().add("a").add("b").add("c").build());
        """
        assert console_of(src) == ["a-b-c"]

    def test_call_result_is_not_bound(self):
        src = """
        var holder = {
          name: "holder",
          getFn: function () { return function () { return typeof this; }; }
        };
        console.log(holder.getFn()());
        """
        assert console_of(src) == ["undefined"]

    def test_this_in_nested_function_is_undefined(self):
        src = """
        var o = {
          v: 1,
          outer: function () {
            var self = this;
            function inner() { return [typeof this, self.v]; }
            return inner();
          }
        };
        var r = o.outer();
        console.log(r[0], r[1]);
        """
        assert console_of(src) == ["undefined 1"]
