"""Tests for the experiment harness: every table/figure regenerates with the
paper's qualitative shape."""

import pytest

from repro.harness import experiments
from repro.harness.reporting import (
    render_bars,
    render_series,
    render_stacked_fraction,
    render_table,
)
from repro.workloads import WORKLOAD_NAMES


@pytest.fixture(scope="module")
def measurements():
    return experiments.measure_all_workloads(seed=7)


class TestFigure1:
    def test_series_shapes(self):
        trends = experiments.figure1_trends()
        load_times = trends["expected_page_load_time_s"]
        requests = trends["js_requests_top1000"]
        # Expectations fall monotonically; JS requests rise monotonically.
        assert all(a[1] > b[1] for a, b in zip(load_times, load_times[1:]))
        assert all(a[1] < b[1] for a, b in zip(requests, requests[1:]))
        assert requests[0] == (2010, 12) and requests[-1] == (2015, 28)


class TestFigure5:
    def test_rows_cover_libraries_plus_average(self, measurements):
        rows = experiments.figure5_instruction_breakdown(measurements)
        assert [row["library"] for row in rows] == WORKLOAD_NAMES + ["Average"]

    def test_fractions_partition(self, measurements):
        for row in experiments.figure5_instruction_breakdown(measurements):
            assert 0.0 <= row["ic_miss_handling"] <= 1.0
            assert abs(row["ic_miss_handling"] + row["rest_of_work"] - 1.0) < 1e-9

    def test_average_fraction_substantial(self, measurements):
        rows = experiments.figure5_instruction_breakdown(measurements)
        average = rows[-1]["ic_miss_handling"]
        # Paper: 36%.  The claim to preserve: a substantial fraction.
        assert 0.15 <= average <= 0.60


class TestTable1:
    def test_columns_present(self, measurements):
        rows = experiments.table1_ic_statistics(measurements)
        for row in rows:
            assert set(row) == {
                "library",
                "hidden_classes",
                "ic_misses",
                "misses_per_hc",
                "ci_handler_pct",
            }

    def test_misses_exceed_hidden_classes(self, measurements):
        """The paper's core observation: each hidden class misses at several
        sites, so misses_per_hc > 1 everywhere."""
        for row in experiments.table1_ic_statistics(measurements)[:-1]:
            assert row["misses_per_hc"] > 1.0, row["library"]

    def test_ci_fraction_substantial_everywhere(self, measurements):
        for row in experiments.table1_ic_statistics(measurements)[:-1]:
            assert row["ci_handler_pct"] > 20.0, row["library"]

    def test_react_has_most_hidden_classes(self, measurements):
        rows = experiments.table1_ic_statistics(measurements)[:-1]
        most = max(rows, key=lambda r: r["hidden_classes"])
        assert most["library"] == "reactlike"


class TestTable4:
    def test_reuse_below_initial_everywhere(self, measurements):
        for row in experiments.table4_miss_rates(measurements)[:-1]:
            assert row["reuse_miss_pct"] < row["initial_miss_pct"], row["library"]

    def test_breakdown_sums_to_reuse_rate(self, measurements):
        for row in experiments.table4_miss_rates(measurements)[:-1]:
            total = row["handler_pct"] + row["global_pct"] + row["other_pct"]
            assert abs(total - row["reuse_miss_pct"]) < 1e-6, row["library"]

    def test_other_is_dominant_component_on_average(self, measurements):
        average = experiments.table4_miss_rates(measurements)[-1]
        assert average["other_pct"] > average["handler_pct"]
        assert average["other_pct"] > average["global_pct"]


class TestFigure8:
    def test_ric_below_conventional_everywhere(self, measurements):
        for row in experiments.figure8_instruction_counts(measurements)[:-1]:
            assert row["ric"] < row["conventional"], row["library"]

    def test_average_saving_in_band(self, measurements):
        average = experiments.figure8_instruction_counts(measurements)[-1]
        assert 0.75 <= average["ric"] <= 0.95  # paper: 0.85


class TestFigure9:
    def test_ric_modeled_time_wins_everywhere(self, measurements):
        rows = experiments.figure9_execution_times(measurements)
        for row in rows[:-1]:
            assert row["ric_ms"] < row["conventional_ms"], row["library"]

    def test_time_saving_slightly_exceeds_instruction_saving(self, measurements):
        """Paper §7.2: eliminated instructions involve cache misses, so the
        time reduction is a bit larger than the instruction reduction."""
        time_rows = experiments.figure9_execution_times(measurements)
        instr_rows = experiments.figure8_instruction_counts(measurements)
        assert time_rows[-1]["normalized"] < instr_rows[-1]["ric"]

    def test_absolute_times_positive(self, measurements):
        rows = experiments.figure9_execution_times(measurements)
        for row in rows[:-1]:
            assert row["conventional_ms"] > 0 and row["ric_ms"] > 0
            assert row["wall_conventional_ms"] > 0


class TestSection73:
    def test_extraction_cheap_and_record_small(self, measurements):
        rows = experiments.section73_overheads(measurements)
        for row in rows[:-1]:
            assert row["extraction_ms"] < 1000.0
            # Paper: ICRecord is ~1% of heap; assert well under 5%.
            assert row["overhead_pct"] < 5.0, row["library"]

    def test_record_sizes_in_paper_band(self, measurements):
        rows = experiments.section73_overheads(measurements)[:-1]
        for row in rows:
            assert 1.0 <= row["icrecord_kb"] <= 200.0, row["library"]


class TestSection6:
    def test_cross_website_results(self):
        result = experiments.section6_websites(seed=7)
        assert result["outputs_match"]
        assert result["miss_rate_drop_pp"] > 0
        assert result["instruction_saving"] > 0


class TestReporting:
    def test_render_table_includes_paper_reference(self, measurements):
        rows = experiments.table1_ic_statistics(measurements)
        text = render_table(
            "T1",
            [("Library", "library"), ("#HC", "hidden_classes")],
            rows,
            paper={"reactlike": (360,)},
        )
        assert "reactlike" in text and "(paper)" in text and "360" in text

    def test_render_bars(self):
        text = render_bars("B", [{"library": "x", "v": 0.5}], value_key="v")
        assert "|" in text and "0.500" in text

    def test_render_stacked_fraction(self):
        text = render_stacked_fraction(
            "F", [{"library": "x", "part": 0.25}], part_key="part"
        )
        assert "25.0%" in text

    def test_render_series(self):
        text = render_series("S", {"a": [(1, 2)]})
        assert "a:" in text and "1: 2" in text

    def test_cli_smoke(self, capsys):
        from repro.harness.cli import main

        assert main(["fig1"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
