"""Unit tests for the heap, hidden classes and object model."""

from repro.runtime.builtins import install_builtins
from repro.runtime.context import Runtime
from repro.runtime.heap import Heap
from repro.runtime.hidden_class import HiddenClassRegistry
from repro.runtime.values import UNDEFINED


class TestHeap:
    def test_addresses_are_monotonic_and_distinct(self):
        heap = Heap(seed=1)
        addresses = [heap.allocate("object") for _ in range(100)]
        assert addresses == sorted(addresses)
        assert len(set(addresses)) == 100

    def test_different_seeds_give_different_bases(self):
        # The paper's premise: addresses differ across executions.
        a = Heap(seed=1).allocate("object")
        b = Heap(seed=2).allocate("object")
        assert a != b

    def test_same_seed_reproduces(self):
        assert Heap(seed=5).allocate("object") == Heap(seed=5).allocate("object")

    def test_byte_accounting(self):
        from repro.runtime.heap import BASELINE_ISOLATE_BYTES

        heap = Heap(seed=0)
        heap.allocate("object")
        heap.allocate("hidden_class")
        assert heap.bytes_allocated > BASELINE_ISOLATE_BYTES
        assert heap.allocation_count == 2
        assert heap.allocations_by_kind["object"] == 1

    def test_extra_bytes_and_alignment(self):
        heap = Heap(seed=0)
        before = heap.bytes_allocated
        heap.allocate("object", extra_bytes=100)
        grown = heap.bytes_allocated - before
        assert grown >= 148 and grown % 16 == 0

    def test_charge_accumulates(self):
        heap = Heap(seed=0)
        before = heap.bytes_allocated
        heap.charge("property_slot", 64)
        assert heap.bytes_allocated - before == 64


class TestHiddenClasses:
    def setup_method(self):
        self.heap = Heap(seed=3)
        self.registry = HiddenClassRegistry(self.heap)
        self.root = self.registry.create_root("builtin", "builtin:Empty", None)

    def test_root_has_empty_layout(self):
        assert self.root.layout == {}
        assert self.root.property_count == 0

    def test_transition_creates_new_class(self):
        hc, created = self.registry.transition(self.root, "x", "site:1")
        assert created
        assert hc.layout == {"x": 0}
        assert hc.incoming is self.root
        assert hc.transition_property == "x"
        assert hc.creation_key == "site:1"

    def test_transition_is_cached(self):
        first, created1 = self.registry.transition(self.root, "x", "site:1")
        second, created2 = self.registry.transition(self.root, "x", "site:2")
        assert created1 and not created2
        assert first is second

    def test_transition_chain_layouts(self):
        a, _ = self.registry.transition(self.root, "x", "s")
        b, _ = self.registry.transition(a, "y", "s")
        assert b.layout == {"x": 0, "y": 1}
        assert self.root.transitions["x"] is a
        assert a.transitions["y"] is b

    def test_diverging_transitions(self):
        a, _ = self.registry.transition(self.root, "x", "s")
        b, _ = self.registry.transition(self.root, "y", "s")
        assert a is not b
        assert a.layout == {"x": 0} and b.layout == {"y": 0}

    def test_creation_order_indices(self):
        a, _ = self.registry.transition(self.root, "x", "s")
        b, _ = self.registry.transition(a, "y", "s")
        assert [hc.index for hc in self.registry.all_classes] == [0, 1, 2]
        assert self.registry.count() == 3
        assert b.index == 2

    def test_on_created_hook_fires(self):
        seen = []
        self.registry.on_created = seen.append
        hc, _ = self.registry.transition(self.root, "z", "s")
        assert seen == [hc]

    def test_dictionary_class(self):
        hc = self.registry.create_dictionary(None)
        assert hc.is_dictionary
        assert hc.creation_key == "builtin:Dictionary"

    def test_addresses_distinct(self):
        a, _ = self.registry.transition(self.root, "x", "s")
        assert a.address != self.root.address


class TestObjects:
    def setup_method(self):
        self.runtime = Runtime(seed=11)
        install_builtins(self.runtime)

    def test_new_object_uses_empty_hc(self):
        obj = self.runtime.new_object()
        assert obj.hidden_class is self.runtime.empty_object_hc
        assert obj.slots == []

    def test_define_own_property_transitions(self):
        obj = self.runtime.new_object()
        outgoing, created = self.runtime.define_own_property(obj, "x", 1.0, "s")
        assert created and obj.hidden_class is outgoing
        assert obj.get_own("x") == (True, 1.0)

    def test_two_objects_share_hidden_class_chain(self):
        a = self.runtime.new_object()
        b = self.runtime.new_object()
        self.runtime.define_own_property(a, "x", 1.0, "s")
        self.runtime.define_own_property(b, "x", 2.0, "s")
        assert a.hidden_class is b.hidden_class
        assert a.slots != b.slots

    def test_update_existing_property_keeps_class(self):
        obj = self.runtime.new_object()
        self.runtime.define_own_property(obj, "x", 1.0, "s")
        hc = obj.hidden_class
        outgoing, created = self.runtime.define_own_property(obj, "x", 9.0, "s")
        assert not created and outgoing is None
        assert obj.hidden_class is hc
        assert obj.get_own("x") == (True, 9.0)

    def test_delete_demotes_to_dictionary(self):
        obj = self.runtime.new_object()
        self.runtime.define_own_property(obj, "x", 1.0, "s")
        self.runtime.define_own_property(obj, "y", 2.0, "s")
        assert self.runtime.delete_property(obj, "x")
        assert obj.in_dictionary_mode
        assert obj.get_own("x") == (False, UNDEFINED)
        assert obj.get_own("y") == (True, 2.0)

    def test_delete_missing_property_is_noop(self):
        obj = self.runtime.new_object()
        assert self.runtime.delete_property(obj, "nope")
        assert not obj.in_dictionary_mode

    def test_dictionary_mode_stores(self):
        obj = self.runtime.new_object()
        self.runtime.to_dictionary(obj)
        self.runtime.define_own_property(obj, "k", 5.0, "s")
        assert obj.get_own("k") == (True, 5.0)

    def test_growth_beyond_threshold_goes_dictionary(self):
        obj = self.runtime.new_object()
        for index in range(70):
            self.runtime.define_own_property(obj, f"p{index}", float(index), "s")
        assert obj.in_dictionary_mode
        assert obj.get_own("p69") == (True, 69.0)

    def test_own_property_names_order(self):
        obj = self.runtime.new_object()
        self.runtime.define_own_property(obj, "b", 1.0, "s")
        self.runtime.define_own_property(obj, "a", 2.0, "s")
        obj.set_element(1, "one")
        obj.set_element(0, "zero")
        assert obj.own_property_names() == ["0", "1", "b", "a"]

    def test_elements_sparse_storage(self):
        obj = self.runtime.new_object()
        obj.set_element(5, "x")
        assert obj.get_element(5) == (True, "x")
        assert obj.get_element(4) == (False, UNDEFINED)


class TestArrays:
    def setup_method(self):
        self.runtime = Runtime(seed=13)
        install_builtins(self.runtime)

    def test_length_tracks_elements(self):
        array = self.runtime.new_array([1.0, 2.0])
        assert array.length == 2.0
        array.set_element(2, 3.0)
        assert array.length == 3.0

    def test_dense_append_and_overwrite(self):
        array = self.runtime.new_array()
        array.set_element(0, "a")
        array.set_element(0, "b")
        assert array.array_elements == ["b"]

    def test_near_gap_fills_with_undefined(self):
        array = self.runtime.new_array()
        array.set_element(3, "x")
        assert array.length == 4.0
        assert array.get_element(1) == (True, UNDEFINED)

    def test_far_gap_goes_sparse(self):
        array = self.runtime.new_array()
        array.set_element(1000, "far")
        assert array.get_element(1000) == (True, "far")
        assert len(array.array_elements) == 0

    def test_set_length_truncates_and_grows(self):
        array = self.runtime.new_array([1.0, 2.0, 3.0])
        array.set_length(1)
        assert array.array_elements == [1.0]
        array.set_length(3)
        assert array.length == 3.0
        assert array.get_element(2) == (True, UNDEFINED)

    def test_js_to_string_joins(self):
        array = self.runtime.new_array([1.0, "x", UNDEFINED])
        assert array.js_to_string() == "1,x,"

    def test_prototype_is_array_prototype(self):
        array = self.runtime.new_array()
        assert array.hidden_class.prototype is self.runtime.array_prototype


class TestFunctions:
    def setup_method(self):
        self.runtime = Runtime(seed=17)
        install_builtins(self.runtime)

    def test_native_function_fields(self):
        fn = self.runtime.new_native_function("f", lambda vm, t, a: None, arity=2)
        assert fn.is_callable
        assert fn.get_own("name") == (True, "f")
        assert fn.get_own("length") == (True, 2.0)

    def test_constructor_hc_cached_and_invalidated(self):
        fn = self.runtime.new_native_function(
            "C", lambda vm, t, a: None, prototype=self.runtime.new_object()
        )
        first = self.runtime.constructor_hidden_class(fn)
        assert self.runtime.constructor_hidden_class(fn) is first
        fn.invalidate_constructor_hc()
        second = self.runtime.constructor_hidden_class(fn)
        assert second is not first
        assert first.creation_key.endswith(":0")
        assert second.creation_key.endswith(":1")

    def test_constructor_hc_prototype_pointer(self):
        prototype = self.runtime.new_object()
        fn = self.runtime.new_native_function("C", lambda vm, t, a: None, prototype=prototype)
        hc = self.runtime.constructor_hidden_class(fn)
        assert hc.prototype is prototype

    def test_lookup_walks_prototype_chain(self):
        prototype = self.runtime.new_object()
        self.runtime.define_own_property(prototype, "m", "method", "s")
        fn = self.runtime.new_native_function("C", lambda vm, t, a: None, prototype=prototype)
        instance = self.runtime.new_object(self.runtime.constructor_hidden_class(fn))
        lookup = self.runtime.lookup_property(instance, "m")
        assert lookup.kind == "proto_field"
        assert lookup.value == "method"
        assert lookup.holder is prototype
        assert lookup.hops == 1

    def test_lookup_absent_reports_chain(self):
        obj = self.runtime.new_object()
        lookup = self.runtime.lookup_property(obj, "missing")
        assert lookup.kind == "absent"
        assert lookup.chain  # at least Object.prototype was walked
