"""Concurrency stress tests for the artifact layer (INTERNALS §11).

The load-bearing invariant is **single-flight**: when N sessions
cold-start the same script concurrently, exactly one thread compiles and
at most one record-store GET happens; everyone else blocks and shares
the published :class:`~repro.core.artifacts.ScriptArtifact`.  These
tests drive that invariant directly with barriers so all contenders
really do arrive at the cache at once, plus the counter-atomicity of
the :class:`~repro.bytecode.cache.CodeCache` underneath.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import FrozenInstanceError

import pytest

import repro.core.artifacts as artifacts_module
from repro.bytecode.cache import CodeCache
from repro.core.artifacts import ArtifactBuilder, ArtifactCache
from repro.core.engine import Engine
from repro.lang.errors import JSLSyntaxError

SOURCE = "var o = {}; o.a = 1; o.b = 2; console.log(o.a + o.b);"

THREADS = 16


def _install_counting_compiler(monkeypatch, delay_s=0.005):
    """Wrap the real frontend with a call counter (and a small sleep to
    widen the race window so losers genuinely contend)."""
    calls = []
    lock = threading.Lock()
    real = artifacts_module.compile_source

    def counting(source, filename):
        with lock:
            calls.append(filename)
        time.sleep(delay_s)
        return real(source, filename)

    monkeypatch.setattr(artifacts_module, "compile_source", counting)
    return calls


def _stampede(worker, count=THREADS):
    """Run ``worker`` on ``count`` threads released by one barrier;
    returns results in thread order, re-raising the first failure."""
    barrier = threading.Barrier(count)

    def gated():
        barrier.wait()
        return worker()

    with ThreadPoolExecutor(max_workers=count) as pool:
        futures = [pool.submit(gated) for _ in range(count)]
        return [future.result() for future in futures]


class CountingStore:
    """Minimal RecordStoreProtocol double that counts GETs."""

    def __init__(self, record=None, delay_s=0.005):
        self.record = record
        self.delay_s = delay_s
        self.gets = 0
        self._lock = threading.Lock()

    def get(self, filename, source):
        with self._lock:
            self.gets += 1
        time.sleep(self.delay_s)
        return self.record

    def put(self, filename, source, record):  # pragma: no cover - unused
        pass

    def records_for(self, scripts):  # pragma: no cover - unused
        return []


class TestSingleFlight:
    def test_sixteen_concurrent_cold_starts_compile_once(self, monkeypatch):
        calls = _install_counting_compiler(monkeypatch)
        engine = Engine(seed=1)

        results = _stampede(
            lambda: engine.artifacts.get_or_build("a.jsl", SOURCE)
        )

        assert len(calls) == 1  # the single-flight assertion
        first_artifact = results[0][0]
        assert all(artifact is first_artifact for artifact, _ in results)
        # Exactly one contender paid the frontend (hit flag False); the
        # other 15 joined or hit and report the frontend as skipped.
        assert sum(1 for _, hit in results if not hit) == 1
        stats = engine.artifacts.stats()
        assert stats.builds == 1
        assert stats.hits + stats.joins == THREADS - 1
        # CodeCache global counters keep their legacy meaning: one run
        # paid the frontend, fifteen skipped it.
        assert engine.code_cache.misses == 1
        assert engine.code_cache.hits == THREADS - 1

    def test_sixteen_concurrent_fetches_hit_store_once(self):
        store = CountingStore()
        cache = ArtifactCache(
            ArtifactBuilder(CodeCache(), record_store=store)
        )

        results = _stampede(
            lambda: cache.get_or_build("a.jsl", SOURCE, fetch_record=True)
        )

        assert store.gets == 1  # at most one GET per script, fleet-wide
        assert all(artifact.record_fetched for artifact, _ in results)
        assert cache.stats().record_fetches == 1

    def test_record_upgrade_reuses_published_code(self, monkeypatch):
        calls = _install_counting_compiler(monkeypatch, delay_s=0)
        store = CountingStore()
        cache = ArtifactCache(
            ArtifactBuilder(CodeCache(), record_store=store)
        )

        base, _ = cache.get_or_build("a.jsl", SOURCE)
        assert not base.record_fetched and store.gets == 0
        upgraded, hit = cache.get_or_build("a.jsl", SOURCE, fetch_record=True)
        assert hit  # the frontend was skipped: code came from the base
        assert upgraded.code is base.code
        assert upgraded.record_fetched
        assert len(calls) == 1  # upgrade never recompiles
        assert store.gets == 1

        again, _ = cache.get_or_build("a.jsl", SOURCE, fetch_record=True)
        assert again is upgraded  # now a pure hit
        assert store.gets == 1

    def test_build_error_reaches_every_joiner_and_is_not_cached(self):
        cache = ArtifactCache(ArtifactBuilder(CodeCache()))
        barrier = threading.Barrier(8)
        errors = []

        def cold_start():
            barrier.wait()
            try:
                cache.get_or_build("bad.jsl", "var = ;")
            except JSLSyntaxError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=cold_start) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(errors) == 8  # leader and joiners all see the failure
        assert len(cache) == 0  # failed builds are never published
        with pytest.raises(JSLSyntaxError):
            cache.get_or_build("bad.jsl", "var = ;")  # and retries re-raise


class TestArtifactImmutability:
    def test_artifact_fields_are_frozen(self, engine):
        artifact, _ = engine.artifacts.get_or_build("a.jsl", SOURCE)
        with pytest.raises(FrozenInstanceError):
            artifact.record = object()
        with pytest.raises(FrozenInstanceError):
            artifact.filename = "b.jsl"

    def test_bytecode_heap_bytes_matches_session_charge(self, engine):
        artifact, _ = engine.artifacts.get_or_build("a.jsl", SOURCE)
        profile = engine.run([("a.jsl", SOURCE)], name="t")
        assert profile.heap_bytes >= artifact.bytecode_heap_bytes > 0


class TestCodeCacheCounters:
    def test_counters_atomic_under_hammering(self):
        cache = CodeCache()
        threads, iterations = 8, 100
        sources = {f"s{i}.jsl": f"var x{i} = {i};" for i in range(threads)}
        # Phase 1: each thread cold-compiles its own script (one miss each).
        engine_builder = ArtifactBuilder(cache)

        def cold(filename, source):
            engine_builder.compile(filename, source)

        _stampede_pairs = list(sources.items())
        with ThreadPoolExecutor(max_workers=threads) as pool:
            for future in [
                pool.submit(cold, filename, source)
                for filename, source in _stampede_pairs
            ]:
                future.result()
        assert cache.misses == threads

        # Phase 2: everyone hammers lookups of every script concurrently.
        def hammer():
            for _ in range(iterations):
                for filename, source in _stampede_pairs:
                    assert cache.lookup(filename, source) is not None

        _stampede(hammer, count=threads)
        assert cache.hits == threads * threads * iterations
        assert cache.misses == threads  # unchanged by the hit storm

    def test_note_hit_is_atomic(self):
        cache = CodeCache()
        threads, iterations = 8, 500

        def bump():
            for _ in range(iterations):
                cache.note_hit()

        _stampede(bump, count=threads)
        assert cache.hits == threads * iterations
