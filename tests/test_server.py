"""Daemon + client tests for the cross-process record-cache service.

Everything here runs the real daemon (on a background thread) against
real unix sockets in tmp dirs — but single-process, so it stays fast and
is part of the default suite.  The multi-*process* chaos runs live in
``tests/test_server_chaos.py``.
"""

import json
import socket

import pytest

from repro.core.config import RICConfig
from repro.core.engine import Engine
from repro.faults import SOCKET_FAULTS, FlakySocketProxy
from repro.ric import RecordStore, RecordStoreProtocol, record_to_envelope
from repro.ric.serialize import ICRECORD_FORMAT_VERSION
from repro.server import (
    LRUCache,
    RecordCacheDaemon,
    RemoteRecordStore,
    make_record_store,
    protocol,
)
from tests.helpers import run_cold_and_reused

pytestmark = [
    pytest.mark.net,
    pytest.mark.skipif(
        not hasattr(socket, "AF_UNIX"), reason="unix sockets required"
    ),
]

LIB_SOURCE = """
function Point(x, y) { this.x = x; this.y = y; }
Point.prototype.norm1 = function () { return this.x + this.y; };
var acc = 0;
for (var i = 0; i < 25; i = i + 1) {
  var p = new Point(i, i + 1);
  acc = acc + p.norm1();
}
console.log("lib total:", acc);
"""

APP_SOURCE = """
var cfg = { depth: 3, label: "app" };
var sum = 0;
for (var j = 0; j < 12; j = j + 1) { sum = sum + cfg.depth; }
console.log("app:", cfg.label, sum);
"""

WORKLOAD = [("lib.jsl", LIB_SOURCE), ("app.jsl", APP_SOURCE)]


@pytest.fixture(scope="module")
def extracted(tmp_path_factory):
    """One Initial run's per-script records, shared by the module."""
    engine = Engine(seed=31)
    engine.run(WORKLOAD, name="initial")
    return engine.extract_per_script_records()


@pytest.fixture
def daemon(tmp_path):
    ricd = RecordCacheDaemon(
        tmp_path / "ricd.sock", directory=tmp_path / "records"
    )
    ricd.start()
    yield ricd
    ricd.stop()


def remote(daemon_or_path, **kwargs) -> RemoteRecordStore:
    path = getattr(daemon_or_path, "socket_path", daemon_or_path)
    return RemoteRecordStore(path, **kwargs)


class TestLRUCache:
    def test_count_bound_evicts_least_recent(self):
        cache = LRUCache(max_records=2, max_bytes=1 << 20)
        cache.put("a", {"n": 1}, 10)
        cache.put("b", {"n": 2}, 10)
        assert cache.get("a") == {"n": 1}  # refresh a; b is now LRU
        assert cache.put("c", {"n": 3}, 10) == 1
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert cache.evictions == 1

    def test_byte_bound_evicts(self):
        cache = LRUCache(max_records=100, max_bytes=25)
        cache.put("a", {}, 10)
        cache.put("b", {}, 10)
        assert cache.put("c", {}, 10) == 1  # 30 bytes > 25: drop "a"
        assert cache.bytes_used == 20
        assert len(cache) == 2

    def test_entry_bigger_than_budget_is_refused(self):
        cache = LRUCache(max_records=10, max_bytes=100)
        cache.put("keep", {}, 10)
        assert cache.put("huge", {}, 101) == -1
        assert cache.get("keep") is not None  # nothing was evicted for it

    def test_replacement_updates_bytes(self):
        cache = LRUCache(max_records=10, max_bytes=100)
        cache.put("a", {"v": 1}, 40)
        cache.put("a", {"v": 2}, 60)
        assert cache.bytes_used == 60
        assert cache.get("a") == {"v": 2}

    def test_clear_and_stats(self):
        cache = LRUCache(max_records=10, max_bytes=100)
        cache.put("a", {}, 1)
        cache.put("b", {}, 1)
        cache.get("a")
        cache.get("nope")
        stats = cache.stats()
        assert stats["records"] == 2 and stats["hits"] == 1
        assert stats["misses"] == 1
        assert cache.clear() == 2
        assert len(cache) == 0 and cache.bytes_used == 0


class TestDaemonRoundTrip:
    def test_put_then_get_through_client(self, daemon, extracted):
        store = remote(daemon)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        fresh = remote(daemon)  # a different client process, in spirit
        record = fresh.get("lib.jsl", LIB_SOURCE)
        assert record is not None
        assert record.stats() == extracted["lib.jsl"].stats()
        assert fresh.stats["hits"] == 1 and fresh.stats["fallbacks"] == 0

    def test_get_miss_answers_cleanly(self, daemon):
        store = remote(daemon)
        assert store.get("nope.jsl", "var x = 1;") is None
        assert store.stats["misses"] == 1 and store.stats["fallbacks"] == 0

    def test_records_for_mixed_hit_miss(self, daemon, extracted):
        store = remote(daemon)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        found = remote(daemon).records_for(WORKLOAD)
        assert len(found) == 1

    def test_stat_exposes_cache_and_store(self, daemon, extracted):
        store = remote(daemon)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        status = store.status()
        assert status["remote"]["cache"]["records"] == 1
        assert status["remote"]["store"]["records"] == 1
        assert status["remote"]["store"]["quarantined"] == 0
        assert status["client"]["puts"] == 1
        assert status["local"]["records"] == 1  # write-through to fallback
        assert len(store) == 1

    def test_evict_verb(self, daemon, extracted):
        store = remote(daemon)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        assert store.evict_all() == 1
        # Evicted from the serving tier, but write-through disk store
        # still has it: the next GET re-warms the LRU.
        assert remote(daemon).get("lib.jsl", LIB_SOURCE) is not None
        assert daemon.store_fallback_hits == 1

    def test_ping(self, daemon, tmp_path):
        assert remote(daemon).ping() is True
        assert remote(tmp_path / "nothing.sock").ping() is False

    def test_write_through_survives_daemon_restart(
        self, daemon, extracted, tmp_path
    ):
        remote(daemon).put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        daemon.stop()
        reborn = RecordCacheDaemon(
            tmp_path / "ricd2.sock", directory=tmp_path / "records"
        )
        with reborn:
            assert remote(reborn).get("lib.jsl", LIB_SOURCE) is not None

    def test_memory_only_daemon(self, tmp_path, extracted):
        with RecordCacheDaemon(tmp_path / "mem.sock") as ricd:
            store = remote(ricd)
            store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
            assert remote(ricd).get("lib.jsl", LIB_SOURCE) is not None
            assert ricd.store_status() is None


class TestAdmissionGate:
    """One client can never poison another through the daemon."""

    def _raw_request(self, daemon, message) -> dict:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(2.0)
        sock.connect(str(daemon.socket_path))
        try:
            protocol.write_frame(sock, message)
            return protocol.read_frame(sock)
        finally:
            sock.close()

    def test_bad_checksum_put_is_refused(self, daemon, extracted):
        envelope = record_to_envelope(extracted["lib.jsl"])
        envelope["checksum"] = "0" * 64
        response = self._raw_request(
            daemon,
            protocol.request(
                "PUT",
                key=["lib.jsl", "feed", ICRECORD_FORMAT_VERSION],
                envelope=envelope,
            ),
        )
        assert response["ok"] is True and response["stored"] is False
        assert "checksum" in response["error"]
        assert daemon.puts_rejected == 1
        # And nothing was cached or persisted for that key.
        get = self._raw_request(
            daemon,
            protocol.request(
                "GET", key=["lib.jsl", "feed", ICRECORD_FORMAT_VERSION]
            ),
        )
        assert get["hit"] is False

    def test_structurally_invalid_record_is_refused(self, daemon, extracted):
        # Re-checksummed (so integrity passes) but smuggling a
        # context-dependent handler kind — the validate_record gate's job.
        from repro.ric.serialize import payload_checksum, record_to_json

        payload = record_to_json(extracted["lib.jsl"])
        payload["handlers"].append({"kind": "store_transition", "offset": 0})
        envelope = {"checksum": payload_checksum(payload), "record": payload}
        response = self._raw_request(
            daemon,
            protocol.request(
                "PUT",
                key=["lib.jsl", "feed", ICRECORD_FORMAT_VERSION],
                envelope=envelope,
            ),
        )
        assert response["stored"] is False
        assert "non-reusable" in response["error"]
        assert daemon.puts_rejected == 1

    def test_unknown_op_errors_without_killing_daemon(self, daemon):
        response = self._raw_request(daemon, protocol.request("NUKE"))
        assert response["ok"] is False
        assert remote(daemon).ping() is True

    def test_version_skew_is_an_error_response(self, daemon):
        response = self._raw_request(daemon, {"v": 99, "op": "PING"})
        assert response["ok"] is False and "version" in response["error"]

    def test_garbage_frame_gets_error_and_close(self, daemon):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(2.0)
        sock.connect(str(daemon.socket_path))
        try:
            import struct

            body = b"not json at all"
            sock.sendall(struct.pack(">I", len(body)) + body)
            response = protocol.read_frame(sock)
            assert response["ok"] is False
            assert protocol.read_frame(sock) is None  # connection closed
        finally:
            sock.close()
        assert remote(daemon).ping() is True  # daemon unharmed

    def test_client_rejects_poisoned_envelope_from_daemon(
        self, daemon, extracted, tmp_path
    ):
        """Belt and braces: even if a (compromised) daemon serves a bad
        envelope, the client's re-verification refuses it and falls back."""
        envelope = record_to_envelope(extracted["lib.jsl"])
        envelope["checksum"] = "f" * 64
        from repro.server.protocol import cache_key
        from repro.bytecode.cache import source_hash

        key = cache_key(
            "lib.jsl", source_hash(LIB_SOURCE), ICRECORD_FORMAT_VERSION
        )
        # Poison the serving tier (entries are (envelope, epoch) pairs).
        daemon.cache.put(key, (envelope, daemon.epoch), 100)
        store = remote(daemon)
        assert store.get("lib.jsl", LIB_SOURCE) is None
        assert store.stats["fallbacks"] == 1 and store.stats["hits"] == 0


class TestLRUBoundsThroughDaemon:
    def test_count_bound_eviction_reported_to_writer(
        self, tmp_path, extracted
    ):
        with RecordCacheDaemon(
            tmp_path / "small.sock",
            directory=tmp_path / "records",
            max_records=1,
        ) as ricd:
            store = remote(ricd)
            store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
            store.put("app.jsl", APP_SOURCE, extracted["app.jsl"])
            assert store.stats["evictions"] == 1
            assert len(ricd.cache) == 1
            # The evicted record is still served from the backing store.
            assert remote(ricd).get("lib.jsl", LIB_SOURCE) is not None

    def test_record_bigger_than_byte_budget_is_refused(
        self, tmp_path, extracted
    ):
        with RecordCacheDaemon(tmp_path / "tiny.sock", max_bytes=64) as ricd:
            store = remote(ricd)
            store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
            assert store.stats["puts_rejected"] == 1
            assert len(ricd.cache) == 0


class TestDegradationLadder:
    """Transport trouble must never fail a run — only lose speedup."""

    def test_no_daemon_falls_back_to_local(self, tmp_path, extracted):
        store = remote(tmp_path / "never-bound.sock")
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        assert store.stats["fallbacks"] == 1
        assert store.get("lib.jsl", LIB_SOURCE) is not None  # via fallback
        assert store.load_errors == []

    def test_circuit_breaker_skips_dead_daemon(self, tmp_path):
        store = remote(tmp_path / "dead.sock", retry_after_s=60.0)
        assert store.get("a.jsl", "var x = 1;") is None
        assert store.get("b.jsl", "var y = 2;") is None
        # Both counted as fallbacks; the second never touched the socket
        # (the breaker was open), which we can only observe as speed —
        # assert at least the accounting is right.
        assert store.stats["fallbacks"] == 2

    @pytest.mark.parametrize("fault", SOCKET_FAULTS)
    def test_transport_faults_fall_back_per_fault(
        self, fault, daemon, extracted, tmp_path
    ):
        remote(daemon).put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        proxy = FlakySocketProxy(
            tmp_path / f"{fault}.sock",
            daemon.socket_path,
            fault=fault,
            probability=1.0,
            slow_delay_s=1.0,
        )
        with proxy:
            store = remote(
                proxy.listen_path, timeout_s=0.3, retry_after_s=0.0
            )
            record = store.get("lib.jsl", LIB_SOURCE)
            assert record is None  # fallback store is empty
            assert store.stats["fallbacks"] == 1
            assert proxy.injected >= 1

    @pytest.mark.parametrize("fault", SOCKET_FAULTS)
    def test_engine_run_through_flaky_proxy_never_diverges(
        self, fault, daemon, extracted, tmp_path
    ):
        """The acceptance contract at engine level: a flaky transport
        yields identical output, no exception, visible fallbacks."""
        remote(daemon).put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        remote(daemon).put("app.jsl", APP_SOURCE, extracted["app.jsl"])
        proxy = FlakySocketProxy(
            tmp_path / f"eng-{fault}.sock",
            daemon.socket_path,
            fault=fault,
            probability=1.0,
            slow_delay_s=1.0,
        )
        with proxy:
            store = remote(
                proxy.listen_path, timeout_s=0.3, retry_after_s=0.0
            )
            engine = Engine(seed=57, record_store=store)
            cold = engine.run(WORKLOAD, name="cold")
            degraded = engine.run(WORKLOAD, name="degraded", use_store=True)
            assert degraded.console_output == cold.console_output
            assert degraded.counters.ric_remote_fallbacks > 0
            assert degraded.counters.ric_remote_hits == 0


class TestEngineIntegration:
    def test_two_engines_share_via_daemon(self, daemon):
        """The §9 scenario across engine instances: A warms, B reuses."""
        a = Engine(seed=1, record_store=remote(daemon))
        cold = a.run(WORKLOAD, name="a", use_store=True)
        assert cold.mode == "initial"  # store was empty: truly cold
        assert a.publish_records(counters=cold.counters) == 2

        b = Engine(seed=2, record_store=remote(daemon))
        reused = b.run(WORKLOAD, name="b", use_store=True)
        assert reused.mode == "reuse-ric"
        assert reused.console_output == cold.console_output
        assert reused.counters.ric_remote_hits == 2
        assert reused.counters.ic_hits_on_preloaded > 0
        assert reused.counters.ic_misses < cold.counters.ic_misses

    def test_engine_builds_store_from_config(self, daemon):
        config = RICConfig(remote_socket=str(daemon.socket_path))
        engine = Engine(config=config, seed=5)
        assert isinstance(engine.record_store, RemoteRecordStore)
        assert isinstance(engine.record_store, RecordStoreProtocol)

    def test_daemon_death_mid_sequence_degrades(self, daemon):
        a = Engine(seed=1, record_store=remote(daemon))
        a.run(WORKLOAD, name="warm", use_store=True)
        a.publish_records()

        store = remote(daemon, timeout_s=0.3, retry_after_s=0.0)
        b = Engine(seed=2, record_store=store)
        first = b.run(WORKLOAD, name="alive", use_store=True)
        assert first.counters.ric_remote_hits == 2
        daemon.stop()
        # stop() stops accepting but in-flight handler threads keep the
        # already-open connection alive; drop it so the next request
        # reconnects and sees ECONNREFUSED.  (A real SIGKILL — covered in
        # test_server_chaos.py — severs the connection itself.)
        store.close()
        second = b.run(WORKLOAD, name="dead", use_store=True)
        assert second.console_output == first.console_output
        assert second.counters.ric_remote_fallbacks > 0
        # The write-back fallback kept A's records: reuse still happened.
        assert second.counters.ic_hits_on_preloaded > 0

    def test_bytecode_cache_counters_surface(self):
        engine = Engine(seed=9)
        first = engine.run(WORKLOAD, name="first")
        second = engine.run(WORKLOAD, name="second")
        assert first.counters.bytecode_cache_misses == len(WORKLOAD)
        assert first.counters.bytecode_cache_hits == 0
        assert second.counters.bytecode_cache_hits == len(WORKLOAD)
        assert second.counters.bytecode_cache_misses == 0
        snapshot = second.counters.as_dict()
        assert snapshot["bytecode_cache_hits"] == len(WORKLOAD)
        for field in (
            "ric_remote_hits",
            "ric_remote_misses",
            "ric_remote_fallbacks",
            "ric_remote_evictions",
        ):
            assert snapshot[field] == 0

    def test_run_cold_and_reused_helper_still_composes(self, daemon):
        """The helper's cold/reused discipline works with store-fed
        records too (records fetched explicitly, as the chaos suite
        does)."""
        a = Engine(seed=1, record_store=remote(daemon))
        a.run(WORKLOAD, name="warm", use_store=True)
        a.publish_records()
        available = remote(daemon).records_for(WORKLOAD)
        assert len(available) == 2
        runs = run_cold_and_reused(
            WORKLOAD, seed=77, name="via-daemon", icrecord=available
        )
        assert runs.outputs_identical
        assert runs.cold_state == runs.reused_state
        assert runs.reused.counters.ic_hits_on_preloaded > 0


class TestStoreSelection:
    def test_make_record_store_local(self, tmp_path):
        store = make_record_store(None, directory=tmp_path / "local")
        assert isinstance(store, RecordStore)

    def test_make_record_store_remote_with_fallback_dir(
        self, daemon, tmp_path, extracted
    ):
        store = make_record_store(
            daemon.socket_path, directory=tmp_path / "fallback"
        )
        assert isinstance(store, RemoteRecordStore)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        # Write-through reached the local directory too.
        fresh = RecordStore(directory=tmp_path / "fallback")
        assert fresh.get("lib.jsl", LIB_SOURCE) is not None


class TestRecordStoreStatus:
    def test_status_counts_records_bytes_and_casualties(
        self, tmp_path, extracted
    ):
        store = RecordStore(directory=tmp_path)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        (tmp_path / "junk.icrecord.json").write_text("{ nope")
        fresh = RecordStore(directory=tmp_path)
        status = fresh.status()
        assert status["records"] == 1
        assert status["bytes"] > 0
        assert status["quarantined"] == 1
        assert status["load_errors"] == 1
        assert status["directory"] == str(tmp_path)

    def test_memory_store_status(self, extracted):
        store = RecordStore()
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        status = store.status()
        assert status["records"] == 1 and status["bytes"] > 0
        assert status["quarantined"] == 0 and status["directory"] is None

    def test_store_status_cli(self, tmp_path, extracted, capsys):
        from repro.harness.run_cli import main

        store = RecordStore(directory=tmp_path / "s")
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        assert main(["--store-dir", str(tmp_path / "s"), "--store-status"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["records"] == 1

    def test_store_status_cli_requires_a_store(self, capsys):
        from repro.harness.run_cli import main

        assert main(["--store-status"]) == 2


class TestClientRobustnessSatellites:
    """Leak-freedom, breaker recovery, and mixed-fleet dialect safety."""

    @staticmethod
    def _open_fds() -> int:
        import os

        return len(os.listdir("/proc/self/fd"))

    def test_failing_connects_leak_no_file_descriptors(self, tmp_path):
        """Hammering a dead endpoint must not cost a single fd: every
        failed connect closes its half-made socket."""
        store = remote(
            str(tmp_path / "nobody-home.sock"),
            retries=0,
            retry_after_s=0.0,  # breaker never short-circuits a connect
            timeout_s=0.1,
        )
        store.get("lib.jsl", LIB_SOURCE)  # warm up lazy imports etc.
        before = self._open_fds()
        for _ in range(50):
            store.get("lib.jsl", LIB_SOURCE)
        assert self._open_fds() == before
        assert store.stats["fallbacks"] == 51

    def test_close_is_idempotent_after_failures(self, tmp_path):
        store = remote(str(tmp_path / "nobody-home.sock"), retries=0)
        store.get("lib.jsl", LIB_SOURCE)
        store.close()
        store.close()  # second close is a no-op, not an error
        assert store.get("lib.jsl", LIB_SOURCE) is None  # still usable

    def test_breaker_half_open_recovers_to_closed(self, tmp_path, extracted):
        """Open (daemon dead) -> half-open probe after retry_after_s ->
        closed (daemon back): remote answers flow again."""
        path = tmp_path / "ricd.sock"
        store = remote(
            str(path), retries=0, retry_after_s=0.3, timeout_s=0.2
        )
        # Trip: endpoint dead, request surfaces a fallback, breaker opens.
        assert store.get("lib.jsl", LIB_SOURCE) is None
        assert store.stats["fallbacks"] == 1
        # Open: inside the hold-off window requests don't even dial.
        assert store.get("lib.jsl", LIB_SOURCE) is None
        assert store.stats["fallbacks"] == 2
        # Daemon comes back; after retry_after_s the next request is the
        # half-open probe — it succeeds, so the breaker closes.
        ricd = RecordCacheDaemon(path, directory=tmp_path / "records")
        ricd.start()
        try:
            import time

            time.sleep(0.35)
            store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
            assert store.stats["puts"] == 1
            assert store.get("lib.jsl", LIB_SOURCE) is not None
            assert store.stats["hits"] == 1  # closed: remote serving again
        finally:
            store.close()
            ricd.stop()

    def test_unknown_verb_counts_proto_mismatch(self, daemon):
        """A daemon from another fleet generation answers an unknown verb
        with a clean error; the client logs-and-counts instead of
        tripping the breaker or burning retries."""
        from repro.server import RemoteProtoMismatch

        store = remote(daemon, retries=2)
        with pytest.raises(RemoteProtoMismatch):
            store._request(protocol.request("FROBNICATE"))
        assert store.stats["proto_mismatch"] == 1
        assert store.stats["retries"] == 0  # clean refusal, no retry burn
        # The breaker did not trip: normal verbs still flow.
        assert store.ping() is True

    def test_version_skew_counts_proto_mismatch(self, daemon):
        from repro.server import RemoteProtoMismatch

        store = remote(daemon, retries=0)
        bad = dict(protocol.request("PING"))
        bad["v"] = 99
        with pytest.raises(RemoteProtoMismatch):
            store._request(bad)
        assert store.stats["proto_mismatch"] == 1

    def test_stat_health_blob_names_build_and_protocol(self, daemon):
        from repro import __version__

        store = remote(daemon)
        health = store.status()["remote"]["health"]
        assert health["version"] == __version__
        assert health["protocol"] == protocol.PROTOCOL_VERSION
        assert health["epoch"] == 0
        assert str(daemon.socket_path) in health["endpoints"]
