"""Fleet routing tests: HashRing, ShardedRecordStore, TCP transport,
and epoch-based invalidation.

In-process daemons (unix sockets plus a TCP case) on background threads
— fast, part of the default suite.  The multi-daemon kill/partition
chaos walls live in ``tests/test_fleet_chaos.py``.
"""

import socket
from collections import Counter

import pytest

from repro.bytecode.cache import source_hash
from repro.core.config import RICConfig
from repro.core.engine import Engine
from repro.faults import kill_shard
from repro.ric.serialize import ICRECORD_FORMAT_VERSION
from repro.ric.store import RecordStore
from repro.server import (
    HashRing,
    RecordCacheDaemon,
    RemoteRecordStore,
    ShardedRecordStore,
    make_record_store,
    protocol,
)

pytestmark = [
    pytest.mark.net,
    pytest.mark.skipif(
        not hasattr(socket, "AF_UNIX"), reason="unix sockets required"
    ),
]

LIB_SOURCE = """
function Point(x, y) { this.x = x; this.y = y; }
Point.prototype.norm1 = function () { return this.x + this.y; };
var acc = 0;
for (var i = 0; i < 25; i = i + 1) {
  var p = new Point(i, i + 1);
  acc = acc + p.norm1();
}
console.log("lib total:", acc);
"""

APP_SOURCE = """
var cfg = { depth: 3, label: "app" };
var sum = 0;
for (var j = 0; j < 12; j = j + 1) { sum = sum + cfg.depth; }
console.log("app:", cfg.label, sum);
"""

WORKLOAD = [("lib.jsl", LIB_SOURCE), ("app.jsl", APP_SOURCE)]


@pytest.fixture(scope="module")
def extracted(tmp_path_factory):
    engine = Engine(seed=31)
    engine.run(WORKLOAD, name="initial")
    return engine.extract_per_script_records()


@pytest.fixture
def fleet(tmp_path):
    """Three disk-backed daemons on unix sockets."""
    daemons = []
    for i in range(3):
        daemon = RecordCacheDaemon(
            tmp_path / f"shard{i}.sock", directory=tmp_path / f"records{i}"
        )
        daemon.start()
        daemons.append(daemon)
    yield daemons
    for daemon in daemons:
        daemon.stop()


def sharded(daemons, tmp_path, replication=2, **kwargs) -> ShardedRecordStore:
    kwargs.setdefault("timeout_s", 0.4)
    kwargs.setdefault("retries", 0)
    kwargs.setdefault("request_deadline_s", 1.0)
    return ShardedRecordStore(
        [str(d.socket_path) for d in daemons],
        fallback=RecordStore(directory=tmp_path / "local"),
        replication=replication,
        **kwargs,
    )


def daemon_for(daemons, endpoint_spec):
    for daemon in daemons:
        if str(daemon.socket_path) == endpoint_spec:
            return daemon
    raise AssertionError(f"no daemon at {endpoint_spec}")


def daemon_holds(daemon, filename, source) -> bool:
    key = protocol.cache_key(
        filename, source_hash(source), ICRECORD_FORMAT_VERSION
    )
    return daemon.cache.get(key) is not None


class TestHashRing:
    def test_preference_is_distinct_and_deterministic(self):
        ring = HashRing(["a", "b", "c"])
        owners = ring.preference("lib.jsl:abc", 2)
        assert len(owners) == 2 and len(set(owners)) == 2
        assert owners == ring.preference("lib.jsl:abc", 2)
        assert ring.primary("lib.jsl:abc") == owners[0]

    def test_preference_clamps_to_ring_size(self):
        ring = HashRing(["a", "b"])
        assert len(ring.preference("k", 5)) == 2

    def test_load_spreads_over_endpoints(self):
        ring = HashRing(["a", "b", "c"])
        owners = Counter(ring.primary(f"key{i}") for i in range(600))
        assert set(owners) == {"a", "b", "c"}
        assert min(owners.values()) > 600 // 10  # no starved shard

    def test_departed_endpoint_only_remaps_its_arc(self):
        before = HashRing(["a", "b", "c"])
        after = HashRing(["a", "b"])  # c left the fleet
        for i in range(300):
            key = f"key{i}"
            if before.primary(key) != "c":
                assert after.primary(key) == before.primary(key)

    def test_duplicate_endpoints_collapse(self):
        assert len(HashRing(["a", "a", "b"])) == 2


class TestShardedRouting:
    def test_put_fans_out_to_exactly_r_replicas(
        self, fleet, tmp_path, extracted
    ):
        store = sharded(fleet, tmp_path, replication=2)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        owners = store.ring.preference(
            f"lib.jsl:{source_hash(LIB_SOURCE)}", 2
        )
        for daemon in fleet:
            expected = str(daemon.socket_path) in owners
            assert daemon_holds(daemon, "lib.jsl", LIB_SOURCE) is expected
        assert store.stats_snapshot()["puts"] == 1

    def test_get_round_trip_counts_one_hit(self, fleet, tmp_path, extracted):
        store = sharded(fleet, tmp_path)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        record = store.get("lib.jsl", LIB_SOURCE)
        assert record is not None
        snapshot = store.stats_snapshot()
        assert snapshot["hits"] == 1 and snapshot["failovers"] == 0

    def test_get_fails_over_to_replica_when_primary_dies(
        self, fleet, tmp_path, extracted
    ):
        store = sharded(fleet, tmp_path, replication=2)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        owners = store.ring.preference(
            f"lib.jsl:{source_hash(LIB_SOURCE)}", 2
        )
        kill_shard(daemon_for(fleet, owners[0]))
        record = store.get("lib.jsl", LIB_SOURCE)
        assert record is not None
        snapshot = store.stats_snapshot()
        assert snapshot["hits"] == 1
        assert snapshot["failovers"] >= 1

    def test_all_owners_dead_falls_back_to_local(
        self, fleet, tmp_path, extracted
    ):
        store = sharded(fleet, tmp_path, replication=2)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        owners = store.ring.preference(
            f"lib.jsl:{source_hash(LIB_SOURCE)}", 2
        )
        for spec in owners:
            kill_shard(daemon_for(fleet, spec))
        # The write-through local fallback still has the record.
        record = store.get("lib.jsl", LIB_SOURCE)
        assert record is not None
        assert store.stats_snapshot()["fallbacks"] == 1

    def test_live_primary_miss_is_authoritative(self, fleet, tmp_path):
        store = sharded(fleet, tmp_path)
        assert store.get("never.jsl", "var x = 1;") is None
        snapshot = store.stats_snapshot()
        assert snapshot["misses"] == 1 and snapshot["failovers"] == 0

    def test_replication_clamped_to_fleet_size(self, fleet, tmp_path):
        store = sharded(fleet, tmp_path, replication=9)
        assert store.replication == 3

    def test_ping_true_while_any_shard_lives(self, fleet, tmp_path):
        store = sharded(fleet, tmp_path)
        kill_shard(fleet[0])
        kill_shard(fleet[1])
        assert store.ping() is True
        kill_shard(fleet[2])
        assert store.ping() is False

    def test_status_reports_ring_and_dead_shards(self, fleet, tmp_path):
        store = sharded(fleet, tmp_path)
        kill_shard(fleet[1])
        status = store.status()
        assert status["replication"] == 2
        assert len(status["shards"]) == 3
        remotes = {
            shard["endpoint"]: shard["remote"] for shard in status["shards"]
        }
        assert remotes[str(fleet[1].socket_path)] is None
        assert remotes[str(fleet[0].socket_path)] is not None


class TestMakeRecordStoreDispatch:
    def test_none_is_local(self, tmp_path):
        assert isinstance(make_record_store(None), RecordStore)

    def test_single_endpoint_is_remote(self, tmp_path):
        store = make_record_store(str(tmp_path / "one.sock"))
        assert isinstance(store, RemoteRecordStore)

    def test_endpoint_list_is_sharded(self, tmp_path):
        store = make_record_store(
            [str(tmp_path / "a.sock"), str(tmp_path / "b.sock")],
            replication=1,
        )
        assert isinstance(store, ShardedRecordStore)
        assert store.replication == 1

    def test_comma_separated_string_is_sharded(self, tmp_path):
        store = make_record_store(
            f"{tmp_path}/a.sock, {tmp_path}/b.sock,{tmp_path}/c.sock"
        )
        assert isinstance(store, ShardedRecordStore)
        assert len(store.ring) == 3

    def test_engine_config_builds_sharded_store(self, fleet, tmp_path):
        config = RICConfig(
            remote_socket=tuple(str(d.socket_path) for d in fleet),
            remote_replication=2,
        )
        engine = Engine(config=config)
        assert isinstance(engine.record_store, ShardedRecordStore)


class TestTCPTransport:
    def test_tcp_daemon_round_trip(self, tmp_path, extracted):
        daemon = RecordCacheDaemon(
            directory=tmp_path / "records", tcp="127.0.0.1:0"
        )
        daemon.start()
        try:
            assert daemon.tcp_endpoint is not None
            store = RemoteRecordStore(
                daemon.tcp_endpoint,
                fallback=RecordStore(),
                timeout_s=1.0,
                retries=0,
            )
            store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
            assert store.get("lib.jsl", LIB_SOURCE) is not None
            assert store.stats["hits"] == 1 and store.stats["puts"] == 1
            status = store.status()
            assert status["remote"]["health"]["protocol"] == 1
            store.close()
        finally:
            daemon.stop()

    def test_dual_transport_serves_both(self, tmp_path, extracted):
        daemon = RecordCacheDaemon(
            tmp_path / "dual.sock",
            directory=tmp_path / "records",
            tcp="127.0.0.1:0",
        )
        daemon.start()
        try:
            over_unix = RemoteRecordStore(daemon.socket_path, retries=0)
            over_tcp = RemoteRecordStore(daemon.tcp_endpoint, retries=0)
            over_unix.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
            # Published over unix, served over TCP: one cache.
            assert over_tcp.get("lib.jsl", LIB_SOURCE) is not None
            over_unix.close()
            over_tcp.close()
        finally:
            daemon.stop()

    def test_daemon_without_any_transport_refused(self):
        with pytest.raises(ValueError):
            RecordCacheDaemon()


class TestEpochInvalidation:
    def test_bump_epoch_clears_every_shard_and_disk(
        self, fleet, tmp_path, extracted
    ):
        store = sharded(fleet, tmp_path, replication=3)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        assert any(len(d.cache) for d in fleet)
        new_epoch = store.bump_epoch()
        assert new_epoch == 1
        for daemon in fleet:
            assert daemon.epoch == 1
            assert len(daemon.cache) == 0
            assert not list(
                (daemon.store.directory).glob("*.icrecord.json")
            )

    def test_stale_put_is_fenced(self, fleet, tmp_path, extracted):
        store = sharded(fleet, tmp_path, replication=3)
        # A publisher whose clock never learned the bump.
        laggard = sharded(fleet, tmp_path, replication=3)
        store.bump_epoch()
        # Pin the laggard's clock at 0 by faking an old client: send the
        # PUT with the stale epoch directly.
        client = next(iter(laggard.clients.values()))
        outcome, _ = client.remote_put(
            "lib.jsl", LIB_SOURCE, extracted["lib.jsl"]
        )
        # The daemon echoes its epoch on the response, so the laggard
        # adopts it; but the PUT itself carried epoch 0 and is refused.
        assert outcome == "stale"
        assert client.epoch == 1

    def test_epoch_gossip_heals_lagging_shard(
        self, fleet, tmp_path, extracted
    ):
        store = sharded(fleet, tmp_path, replication=3)
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        # Bump only two shards — the third "missed the broadcast".
        for daemon in fleet[:2]:
            RemoteRecordStore(daemon.socket_path, retries=0).bump_epoch(1)
        assert fleet[2].epoch == 0 and len(fleet[2].cache) == 1
        # Any contact from a client that knows epoch 1 heals it.
        fresh = sharded(fleet, tmp_path, replication=3)
        fresh.get("lib.jsl", LIB_SOURCE)  # learns epoch 1 from some shard
        for daemon in fleet:
            fresh.clients[str(daemon.socket_path)].remote_get(
                "lib.jsl", LIB_SOURCE
            )
        assert fleet[2].epoch == 1 and len(fleet[2].cache) == 0

    def test_client_refuses_pre_epoch_hit_from_hostile_replica(
        self, fleet, tmp_path, extracted
    ):
        """Belt and braces: even a replica that ignores epoch adoption
        (an old or lying daemon) cannot resurrect a pre-bump record —
        the client's own epoch fence refuses the hit."""
        daemon = fleet[0]
        store = RemoteRecordStore(
            daemon.socket_path, fallback=RecordStore(), retries=0
        )
        store.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        # The daemon goes rogue: it never adopts gossiped epochs, so its
        # cache still holds the record admitted at epoch 0.
        daemon._maybe_adopt_epoch = lambda epoch: 0
        store._epoch_clock.advance(7)  # client learned a bump elsewhere
        outcome, record = store.remote_get("lib.jsl", LIB_SOURCE)
        assert outcome == "stale" and record is None
        assert store.get("lib.jsl", LIB_SOURCE) is None
        assert store.stats["stale_epoch"] == 1

    def test_epoch_survives_daemon_restart(self, tmp_path, extracted):
        directory = tmp_path / "records"
        daemon = RecordCacheDaemon(tmp_path / "ricd.sock", directory=directory)
        daemon.start()
        # retries=1 re-dials the dead connection after the restart;
        # retry_after_s=0 keeps the breaker out of the way.
        client = RemoteRecordStore(
            daemon.socket_path, retries=1, retry_after_s=0.0
        )
        client.put("lib.jsl", LIB_SOURCE, extracted["lib.jsl"])
        assert client.bump_epoch(4) == 4
        daemon.stop()
        reborn = RecordCacheDaemon(tmp_path / "ricd.sock", directory=directory)
        assert reborn.epoch == 4
        reborn.start()
        try:
            outcome, _ = client.remote_get("lib.jsl", LIB_SOURCE)
            assert outcome == "miss"  # nothing resurrected from disk
        finally:
            client.close()
            reborn.stop()
