"""Differential cold-vs-reuse wall: RIC must never change what a program does.

For every workload (the seven paper libraries plus the default synthetic
library) we run the full protocol — Initial run, ICRecord extraction, a
Conventional ("cold") run and a RIC Reuse run — and require that reuse is
observationally invisible:

* byte-identical console output,
* byte-identical final heap-observable state (the canonical, address-free
  ``serialize_user_globals`` serialization),
* no degraded-record counters (``ric_records_corrupt`` /
  ``ric_records_rejected`` stay zero — the record we just extracted must
  never be refused),

while still actually engaging the mechanism (preloads happen, misses go
down).  The interpreter fast paths are enabled (the default), so this
suite also guards the monomorphic GET_PROP/SET_PROP shortcuts against
semantic drift.
"""

from __future__ import annotations

import json

import pytest

from repro.core.budget import ExecutionBudget
from repro.core.engine import Engine
from repro.core.errors import StepBudgetExceeded
from repro.harness.bench import bench_workloads
from repro.ric.store import RecordStore
from repro.ric.validate import validate_record
from tests.helpers import ColdReuseRuns, run_cold_and_reused

WORKLOAD_NAMES = (
    "angularlike",
    "reactlike",
    "jquerylike",
    "underscorelike",
    "handlebarslike",
    "camanlike",
    "jsfeatlike",
    "synthetic",
    "polyshapes",
    "typedarith",
)

#: Counters allowed to differ between a quickened and a generic reuse run
#: of the same workload: the specialization tallies themselves, plus the
#: modeled instruction costs (typed property hits charge SPECIALIZED_PROP
#: instead of the IC fast-path cost — that discount is the whole point).
#: Everything else — IC hit/miss/tier counts included — must be *exactly*
#: equal: specialization may change how fast a site is serviced, never
#: how often it hits or what it observes.
SPECIALIZE_VARIANT_COUNTERS = frozenset(
    (
        "instructions",
        "total_instructions",
        "specialized_sites",
        "specialized_hits",
        "deopts",
        "despecialized_sites",
    )
)


@pytest.fixture(scope="module")
def runs_by_workload() -> dict[str, ColdReuseRuns]:
    scripts_by_name = bench_workloads()
    assert set(WORKLOAD_NAMES) == set(scripts_by_name), (
        "differential suite out of sync with the bench workload registry"
    )
    return {
        name: run_cold_and_reused(scripts_by_name[name], seed=11, name=name)
        for name in WORKLOAD_NAMES
    }


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestColdVsReuseDifferential:
    def test_console_output_identical(self, runs_by_workload, name):
        runs = runs_by_workload[name]
        assert runs.cold.console_output == runs.reused.console_output
        # Workloads that print nothing would make this vacuous.
        assert runs.cold.console_output, f"{name} produced no observable output"

    def test_heap_observable_state_identical(self, runs_by_workload, name):
        runs = runs_by_workload[name]
        cold_blob = json.dumps(runs.cold_state, sort_keys=True)
        reused_blob = json.dumps(runs.reused_state, sort_keys=True)
        assert cold_blob == reused_blob
        assert runs.cold_state, f"{name} left no user globals to compare"

    def test_record_never_degrades(self, runs_by_workload, name):
        counters = runs_by_workload[name].reused.counters
        assert counters.ric_records_corrupt == 0
        assert counters.ric_records_rejected == 0

    def test_reuse_engages_the_mechanism(self, runs_by_workload, name):
        runs = runs_by_workload[name]
        assert runs.reused.counters.ric_preloads > 0
        assert runs.reused.counters.ic_hits_on_preloaded > 0
        assert runs.reused.counters.ic_misses < runs.cold.counters.ic_misses


class TestPolymorphicColdVsReuse:
    """The wall extended to POLY/MEGA sites (INTERNALS §13): a record
    persisted from a polymorphic run preloads full slot *sets*, reuse
    stays observationally invisible at every tier, and corrupt slot data
    degrades per-record instead of crashing."""

    @pytest.fixture(scope="class")
    def poly_runs(self) -> ColdReuseRuns:
        scripts = bench_workloads()["polyshapes"]
        return run_cold_and_reused(scripts, seed=11, name="polyshapes")

    def test_record_persists_polymorphic_slot_sets(self, poly_runs):
        from repro.ic.icvector import POLY_LIMIT

        stats = poly_runs.record.stats()
        assert stats["poly_slot_sites"] > 0
        for slots in poly_runs.record.site_slots.values():
            assert 1 <= len(slots) <= POLY_LIMIT

    def test_poly_reuse_is_observationally_invisible(self, poly_runs):
        assert poly_runs.cold.console_output == poly_runs.reused.console_output
        cold_blob = json.dumps(poly_runs.cold_state, sort_keys=True)
        reused_blob = json.dumps(poly_runs.reused_state, sort_keys=True)
        assert cold_blob == reused_blob

    def test_poly_reuse_engages_every_tier(self, poly_runs):
        cold, reused = poly_runs.cold.counters, poly_runs.reused.counters
        assert reused.ric_preloads > 0
        assert cold.ic_hits_poly > 0 and reused.ic_hits_poly > 0
        assert cold.ic_hits_mega > 0 and reused.ic_hits_mega > 0
        assert reused.ic_misses < cold.ic_misses
        # MEGA sites persist nothing (their slots were cleared at the
        # transition), so the reuse run re-learns them organically and
        # crosses into MEGA exactly as often as the cold run did.
        assert cold.ic_mega_transitions > 0
        assert reused.ic_mega_transitions == cold.ic_mega_transitions

    def test_invalid_slot_plan_is_rejected_per_record(self, poly_runs):
        """A slot list pointing at a nonexistent hidden-class row fails
        validation: the record is refused (``ric_records_rejected``), the
        run silently degrades to cold, output stays identical."""
        import dataclasses

        from repro.ric.icrecord import SiteSlot

        bad_slots = dict(poly_runs.record.site_slots)
        site_key = next(iter(bad_slots))
        bad_slots[site_key] = [SiteSlot(hcid=10**6, handler_id=0)]
        bad_record = dataclasses.replace(poly_runs.record, site_slots=bad_slots)

        scripts = bench_workloads()["polyshapes"]
        runs = run_cold_and_reused(
            scripts, seed=11, name="polyshapes", icrecord=bad_record
        )
        assert runs.reused.counters.ric_records_rejected == 1
        assert runs.reused.counters.ric_preloads == 0
        assert runs.cold.console_output == runs.reused.console_output

    def test_truncated_slot_wire_data_is_corrupt_not_fatal(self, poly_runs):
        """Mangled ``site_slots`` wire data fails the parse (a
        RecordFormatError, never an arbitrary crash) and the CorruptRecord
        path degrades the run with ``ric_records_corrupt`` moving."""
        from repro.ric.errors import CorruptRecord, RecordFormatError
        from repro.ric.serialize import record_from_json, record_to_json

        blob = record_to_json(poly_runs.record)
        assert blob["site_slots"]  # the wire format carries the slot sets
        truncated = json.loads(json.dumps(blob))
        site_key = next(iter(truncated["site_slots"]))
        truncated["site_slots"][site_key] = "garbage"
        with pytest.raises(RecordFormatError):
            record_from_json(truncated)

        scripts = bench_workloads()["polyshapes"]
        corrupt = CorruptRecord(source="polyshapes.jsl", error="truncated slots")
        runs = run_cold_and_reused(
            scripts, seed=11, name="polyshapes", icrecord=corrupt
        )
        assert runs.reused.counters.ric_records_corrupt == 1
        assert runs.cold.console_output == runs.reused.console_output


class TestPolymorphicStoreRoundTrip:
    """Acceptance criterion: a record persisted from a polymorphic run
    round-trips through a RecordStore and preloads slot sets in a second
    engine; corrupt slot data on disk is quarantined, never fatal."""

    def _scripts(self):
        return bench_workloads()["polyshapes"]

    def test_two_engines_share_polymorphic_records(self, tmp_path):
        scripts = self._scripts()
        store_a = RecordStore(directory=tmp_path)
        a = Engine(seed=21, record_store=store_a)
        cold = a.run(scripts, name="warm", use_store=True)
        assert cold.mode == "initial"  # store empty: truly cold
        assert a.publish_records(counters=cold.counters) > 0

        store_b = RecordStore(directory=tmp_path)
        assert store_b.load_errors == []
        b = Engine(seed=22, record_store=store_b)
        reused = b.run(scripts, name="reuse", use_store=True)
        assert reused.mode == "reuse-ric"
        assert reused.console_output == cold.console_output
        assert reused.counters.ric_preloads > 0
        assert reused.counters.ic_hits_poly > 0
        assert reused.counters.ic_misses < cold.counters.ic_misses

    def test_corrupt_store_entry_is_quarantined(self, tmp_path):
        scripts = self._scripts()
        a = Engine(seed=21, record_store=RecordStore(directory=tmp_path))
        cold = a.run(scripts, name="warm", use_store=True)
        a.publish_records()

        # Rot every persisted record on disk.
        paths = list(tmp_path.glob("*.icrecord.json"))
        assert paths
        for path in paths:
            path.write_text(path.read_text()[: len(path.read_text()) // 2])

        store = RecordStore(directory=tmp_path)
        assert store.load_errors  # quarantined, surfaced, not raised
        assert len(store) == 0
        c = Engine(seed=23, record_store=store)
        degraded = c.run(scripts, name="degraded", use_store=True)
        assert degraded.console_output == cold.console_output


@pytest.fixture(scope="module")
def specialize_runs_by_workload() -> dict[str, tuple[ColdReuseRuns, ColdReuseRuns]]:
    """Every registry workload, run through the full protocol twice: once
    with bytecode specialization (the default) and once with it forced
    off.  Same seed, so everything observable must coincide."""
    from repro.core.config import RICConfig

    scripts_by_name = bench_workloads()
    out = {}
    for name in WORKLOAD_NAMES:
        on = run_cold_and_reused(
            scripts_by_name[name],
            seed=17,
            name=name,
            config=RICConfig(specialize=True),
        )
        off = run_cold_and_reused(
            scripts_by_name[name],
            seed=17,
            name=name,
            config=RICConfig(specialize=False),
        )
        out[name] = (on, off)
    return out


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestSpecializeDifferential:
    """The specialization wall (INTERNALS §14): quickened reuse must be
    observationally identical to generic reuse over every registry
    workload — byte-identical output, byte-identical user-visible heap,
    and exactly-equal counters outside the specialization tallies and
    the modeled instruction costs they discount."""

    def test_outputs_identical(self, specialize_runs_by_workload, name):
        on, off = specialize_runs_by_workload[name]
        assert on.reused.console_output == off.reused.console_output
        assert on.reused.console_output, f"{name} produced no output"

    def test_heap_observable_state_identical(
        self, specialize_runs_by_workload, name
    ):
        on, off = specialize_runs_by_workload[name]
        on_blob = json.dumps(on.reused_state, sort_keys=True)
        off_blob = json.dumps(off.reused_state, sort_keys=True)
        assert on_blob == off_blob

    def test_counters_equal_outside_specialization(
        self, specialize_runs_by_workload, name
    ):
        on, off = specialize_runs_by_workload[name]
        on_dict = on.reused.counters.as_dict()
        off_dict = off.reused.counters.as_dict()
        divergent = {
            key
            for key in on_dict
            if on_dict[key] != off_dict[key]
            and key not in SPECIALIZE_VARIANT_COUNTERS
        }
        assert not divergent, f"{name}: unexpected counter drift: {divergent}"
        # The IC layer in particular is untouched: typed property hits
        # book the same accesses/hits/tier counts the generic fast path
        # would have.
        for key in ("ic_accesses", "ic_hits", "ic_misses",
                    "ic_hits_mono", "ic_hits_poly", "ic_hits_mega",
                    "ic_hits_on_preloaded"):
            assert on_dict[key] == off_dict[key], f"{name}: {key} diverged"

    def test_cold_runs_are_unaffected(self, specialize_runs_by_workload, name):
        """Quickening only happens on reuse runs (there is no feedback to
        spend before a record exists), so cold runs are counter-identical
        bit for bit, specialization tallies included."""
        on, off = specialize_runs_by_workload[name]
        assert on.cold.counters.as_dict() == off.cold.counters.as_dict()
        assert on.cold.counters.specialized_sites == 0

    def test_specialization_engages_where_applicable(
        self, specialize_runs_by_workload, name
    ):
        """The wall must not hold vacuously: on the type-stable showcase
        workload the quickened reuse run actually executes typed opcodes
        (with zero deopts) and its modeled cost beats generic reuse."""
        if name != "typedarith":
            pytest.skip("engagement gate runs on the showcase workload")
        on, off = specialize_runs_by_workload[name]
        counters = on.reused.counters
        assert counters.specialized_sites > 0
        assert counters.specialized_hits > 0
        assert counters.deopts == 0
        assert off.reused.counters.specialized_sites == 0
        assert (
            on.reused.modeled_time_ms < off.reused.modeled_time_ms
        ), "quickened reuse should cost less than generic reuse"


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestBudgetAbortDifferential:
    """Governance differential (INTERNALS §10): a budget abort must leave
    no poison behind.  The partial record extracted from an aborted run
    validates and persists cleanly, and the *same engine*, run unbudgeted
    afterwards, reproduces the exact cold/reuse counters of an engine
    that never aborted."""

    #: Every workload dispatches > ~2.5k bytecodes, so this aborts all
    #: of them partway through (amortized at a 64-dispatch stride).
    ABORT_BUDGET = ExecutionBudget(max_steps=2000, check_stride=64)

    def test_abort_leaves_no_poison(self, name, tmp_path):
        scripts = bench_workloads()[name]
        survivor = Engine(seed=11)
        with pytest.raises(StepBudgetExceeded):
            survivor.run(scripts, name=name, budget=self.ABORT_BUDGET)

        # The partial records validate and survive a disk round trip.
        partial = survivor.extract_per_script_records()
        store = RecordStore(directory=tmp_path)
        for filename, record in partial.items():
            assert validate_record(record) == [], filename
            store.put(filename, f"src-of-{filename}", record)
        reloaded = RecordStore(directory=tmp_path)
        assert reloaded.load_errors == []
        assert len(reloaded) == len(partial)

        # The survivor engine now runs the full protocol unbudgeted and
        # must be counter-identical to an engine with no abort history.
        cold = survivor.run(scripts, name=name)
        record = survivor.extract_icrecord()
        assert validate_record(record) == []
        reused = survivor.run(scripts, name=name, icrecord=record)

        pristine = run_cold_and_reused(scripts, seed=11, name=name)
        assert cold.console_output == pristine.cold.console_output
        assert reused.console_output == pristine.reused.console_output
        assert cold.counters.as_dict() == pristine.cold.counters.as_dict()
        assert reused.counters.as_dict() == pristine.reused.counters.as_dict()
