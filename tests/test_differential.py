"""Differential cold-vs-reuse wall: RIC must never change what a program does.

For every workload (the seven paper libraries plus the default synthetic
library) we run the full protocol — Initial run, ICRecord extraction, a
Conventional ("cold") run and a RIC Reuse run — and require that reuse is
observationally invisible:

* byte-identical console output,
* byte-identical final heap-observable state (the canonical, address-free
  ``serialize_user_globals`` serialization),
* no degraded-record counters (``ric_records_corrupt`` /
  ``ric_records_rejected`` stay zero — the record we just extracted must
  never be refused),

while still actually engaging the mechanism (preloads happen, misses go
down).  The interpreter fast paths are enabled (the default), so this
suite also guards the monomorphic GET_PROP/SET_PROP shortcuts against
semantic drift.
"""

from __future__ import annotations

import json

import pytest

from repro.core.budget import ExecutionBudget
from repro.core.engine import Engine
from repro.core.errors import StepBudgetExceeded
from repro.harness.bench import bench_workloads
from repro.ric.store import RecordStore
from repro.ric.validate import validate_record
from tests.helpers import ColdReuseRuns, run_cold_and_reused

WORKLOAD_NAMES = (
    "angularlike",
    "reactlike",
    "jquerylike",
    "underscorelike",
    "handlebarslike",
    "camanlike",
    "jsfeatlike",
    "synthetic",
)


@pytest.fixture(scope="module")
def runs_by_workload() -> dict[str, ColdReuseRuns]:
    scripts_by_name = bench_workloads()
    assert set(WORKLOAD_NAMES) == set(scripts_by_name), (
        "differential suite out of sync with the bench workload registry"
    )
    return {
        name: run_cold_and_reused(scripts_by_name[name], seed=11, name=name)
        for name in WORKLOAD_NAMES
    }


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestColdVsReuseDifferential:
    def test_console_output_identical(self, runs_by_workload, name):
        runs = runs_by_workload[name]
        assert runs.cold.console_output == runs.reused.console_output
        # Workloads that print nothing would make this vacuous.
        assert runs.cold.console_output, f"{name} produced no observable output"

    def test_heap_observable_state_identical(self, runs_by_workload, name):
        runs = runs_by_workload[name]
        cold_blob = json.dumps(runs.cold_state, sort_keys=True)
        reused_blob = json.dumps(runs.reused_state, sort_keys=True)
        assert cold_blob == reused_blob
        assert runs.cold_state, f"{name} left no user globals to compare"

    def test_record_never_degrades(self, runs_by_workload, name):
        counters = runs_by_workload[name].reused.counters
        assert counters.ric_records_corrupt == 0
        assert counters.ric_records_rejected == 0

    def test_reuse_engages_the_mechanism(self, runs_by_workload, name):
        runs = runs_by_workload[name]
        assert runs.reused.counters.ric_preloads > 0
        assert runs.reused.counters.ic_hits_on_preloaded > 0
        assert runs.reused.counters.ic_misses < runs.cold.counters.ic_misses


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestBudgetAbortDifferential:
    """Governance differential (INTERNALS §10): a budget abort must leave
    no poison behind.  The partial record extracted from an aborted run
    validates and persists cleanly, and the *same engine*, run unbudgeted
    afterwards, reproduces the exact cold/reuse counters of an engine
    that never aborted."""

    #: Every workload dispatches > ~2.5k bytecodes, so this aborts all
    #: of them partway through (amortized at a 64-dispatch stride).
    ABORT_BUDGET = ExecutionBudget(max_steps=2000, check_stride=64)

    def test_abort_leaves_no_poison(self, name, tmp_path):
        scripts = bench_workloads()[name]
        survivor = Engine(seed=11)
        with pytest.raises(StepBudgetExceeded):
            survivor.run(scripts, name=name, budget=self.ABORT_BUDGET)

        # The partial records validate and survive a disk round trip.
        partial = survivor.extract_per_script_records()
        store = RecordStore(directory=tmp_path)
        for filename, record in partial.items():
            assert validate_record(record) == [], filename
            store.put(filename, f"src-of-{filename}", record)
        reloaded = RecordStore(directory=tmp_path)
        assert reloaded.load_errors == []
        assert len(reloaded) == len(partial)

        # The survivor engine now runs the full protocol unbudgeted and
        # must be counter-identical to an engine with no abort history.
        cold = survivor.run(scripts, name=name)
        record = survivor.extract_icrecord()
        assert validate_record(record) == []
        reused = survivor.run(scripts, name=name, icrecord=record)

        pristine = run_cold_and_reused(scripts, seed=11, name=name)
        assert cold.console_output == pristine.cold.console_output
        assert reused.console_output == pristine.reused.console_output
        assert cold.counters.as_dict() == pristine.cold.counters.as_dict()
        assert reused.counters.as_dict() == pristine.reused.counters.as_dict()
