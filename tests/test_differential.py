"""Differential cold-vs-reuse wall: RIC must never change what a program does.

For every workload (the seven paper libraries plus the default synthetic
library) we run the full protocol — Initial run, ICRecord extraction, a
Conventional ("cold") run and a RIC Reuse run — and require that reuse is
observationally invisible:

* byte-identical console output,
* byte-identical final heap-observable state (the canonical, address-free
  ``serialize_user_globals`` serialization),
* no degraded-record counters (``ric_records_corrupt`` /
  ``ric_records_rejected`` stay zero — the record we just extracted must
  never be refused),

while still actually engaging the mechanism (preloads happen, misses go
down).  The interpreter fast paths are enabled (the default), so this
suite also guards the monomorphic GET_PROP/SET_PROP shortcuts against
semantic drift.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.bench import bench_workloads
from tests.helpers import ColdReuseRuns, run_cold_and_reused

WORKLOAD_NAMES = (
    "angularlike",
    "reactlike",
    "jquerylike",
    "underscorelike",
    "handlebarslike",
    "camanlike",
    "jsfeatlike",
    "synthetic",
)


@pytest.fixture(scope="module")
def runs_by_workload() -> dict[str, ColdReuseRuns]:
    scripts_by_name = bench_workloads()
    assert set(WORKLOAD_NAMES) == set(scripts_by_name), (
        "differential suite out of sync with the bench workload registry"
    )
    return {
        name: run_cold_and_reused(scripts_by_name[name], seed=11, name=name)
        for name in WORKLOAD_NAMES
    }


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestColdVsReuseDifferential:
    def test_console_output_identical(self, runs_by_workload, name):
        runs = runs_by_workload[name]
        assert runs.cold.console_output == runs.reused.console_output
        # Workloads that print nothing would make this vacuous.
        assert runs.cold.console_output, f"{name} produced no observable output"

    def test_heap_observable_state_identical(self, runs_by_workload, name):
        runs = runs_by_workload[name]
        cold_blob = json.dumps(runs.cold_state, sort_keys=True)
        reused_blob = json.dumps(runs.reused_state, sort_keys=True)
        assert cold_blob == reused_blob
        assert runs.cold_state, f"{name} left no user globals to compare"

    def test_record_never_degrades(self, runs_by_workload, name):
        counters = runs_by_workload[name].reused.counters
        assert counters.ric_records_corrupt == 0
        assert counters.ric_records_rejected == 0

    def test_reuse_engages_the_mechanism(self, runs_by_workload, name):
        runs = runs_by_workload[name]
        assert runs.reused.counters.ric_preloads > 0
        assert runs.reused.counters.ic_hits_on_preloaded > 0
        assert runs.reused.counters.ic_misses < runs.cold.counters.ic_misses
