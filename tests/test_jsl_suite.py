"""Runner for the jsl conformance suite (tests/jsl_suite/*.jsl).

Each program declares its expected console output in `// expect: ` lines.
Every program is run twice: cold (Initial) and as a RIC Reuse run with the
record extracted from the cold run — both must match the expectations
exactly, making every conformance program double as a RIC soundness case.
"""

from pathlib import Path

import pytest

from repro.core.engine import Engine

SUITE_DIR = Path(__file__).parent / "jsl_suite"
PROGRAMS = sorted(SUITE_DIR.glob("*.jsl"))


def expectations_of(source: str) -> list[str]:
    return [
        line.split("// expect: ", 1)[1]
        for line in source.splitlines()
        if line.startswith("// expect: ")
    ]


@pytest.mark.parametrize("path", PROGRAMS, ids=lambda p: p.stem)
class TestJslSuite:
    def test_cold_run_matches_expectations(self, path):
        source = path.read_text()
        expected = expectations_of(source)
        assert expected, f"{path.name} declares no expectations"
        engine = Engine(seed=1)
        profile = engine.run([(path.name, source)], name=path.stem)
        assert profile.console_output == expected

    def test_ric_reuse_matches_expectations(self, path):
        source = path.read_text()
        expected = expectations_of(source)
        engine = Engine(seed=1)
        engine.run([(path.name, source)], name=path.stem)
        record = engine.extract_icrecord()
        ric = engine.run([(path.name, source)], name=path.stem, icrecord=record)
        assert ric.console_output == expected


def test_suite_is_not_empty():
    assert len(PROGRAMS) >= 10
