"""Tests for the inline-caching layer: ICVector states, handlers, the miss
path and the stub cache."""

import pytest

from repro.bytecode.code import FeedbackSlotInfo, SiteKind
from repro.ic.handlers import (
    LoadArrayLengthHandler,
    LoadElementHandler,
    LoadFieldHandler,
    LoadGlobalHandler,
    LoadNotFoundHandler,
    StoreElementHandler,
    StoreFieldHandler,
    StoreGlobalHandler,
    StoreTransitionHandler,
    deserialize_handler,
)
from repro.ic.icvector import POLY_LIMIT, ICSite, ICState
from repro.lang.errors import SourcePosition

from tests.helpers import run_jsl


def make_site(kind=SiteKind.NAMED_LOAD, name="p", line=1):
    info = FeedbackSlotInfo(
        kind=kind, position=SourcePosition("t.jsl", line, 1), name=name
    )
    return ICSite(info)


class FakeHC:
    _next = 0

    def __init__(self):
        FakeHC._next += 1
        self.address = 0x1000 + FakeHC._next * 16


class TestICSiteStates:
    def test_starts_uninitialized(self):
        site = make_site()
        assert site.state is ICState.UNINITIALIZED
        assert site.lookup(FakeHC()) is None

    def test_monomorphic_after_one_install(self):
        site = make_site()
        hc = FakeHC()
        handler = LoadFieldHandler(0)
        assert site.install(hc, handler)
        assert site.state is ICState.MONOMORPHIC
        assert site.lookup(hc) is handler

    def test_polymorphic_after_two(self):
        site = make_site()
        site.install(FakeHC(), LoadFieldHandler(0))
        site.install(FakeHC(), LoadFieldHandler(1))
        assert site.state is ICState.POLYMORPHIC

    def test_megamorphic_beyond_poly_limit(self):
        site = make_site()
        for _ in range(POLY_LIMIT):
            assert site.install(FakeHC(), LoadFieldHandler(0))
        assert not site.install(FakeHC(), LoadFieldHandler(0))
        assert site.state is ICState.MEGAMORPHIC
        assert site.slots == []

    def test_megamorphic_rejects_installs(self):
        site = make_site()
        for _ in range(POLY_LIMIT + 1):
            site.install(FakeHC(), LoadFieldHandler(0))
        assert not site.install(FakeHC(), LoadFieldHandler(0))

    def test_reinstall_replaces_handler(self):
        site = make_site()
        hc = FakeHC()
        site.install(hc, LoadFieldHandler(0))
        replacement = LoadFieldHandler(3)
        site.install(hc, replacement)
        assert site.lookup(hc) is replacement
        assert len(site.slots) == 1

    def test_preloaded_tracking(self):
        site = make_site()
        hc = FakeHC()
        site.install(hc, LoadFieldHandler(0), preloaded=True)
        assert site.was_preloaded(hc)
        other = FakeHC()
        site.install(other, LoadFieldHandler(0))
        assert not site.was_preloaded(other)


class TestHandlerClassification:
    """Paper §3.2: which handlers are context-independent."""

    def test_context_independent_kinds(self):
        assert LoadFieldHandler(1).is_context_independent
        assert StoreFieldHandler(1).is_context_independent
        assert LoadArrayLengthHandler().is_context_independent
        assert LoadElementHandler().is_context_independent
        assert StoreElementHandler().is_context_independent

    def test_context_dependent_kinds(self):
        assert not StoreTransitionHandler(0, FakeHC()).is_context_independent
        assert not LoadGlobalHandler(0).is_context_independent
        assert not StoreGlobalHandler(0).is_context_independent
        assert not LoadNotFoundHandler(()).is_context_independent

    def test_ci_handlers_serialize_and_round_trip(self):
        for handler in (
            LoadFieldHandler(5),
            StoreFieldHandler(2),
            LoadArrayLengthHandler(),
            LoadElementHandler(),
            StoreElementHandler(),
        ):
            data = handler.serialize()
            assert data is not None
            clone = deserialize_handler(data)
            assert type(clone) is type(handler)
            assert getattr(clone, "offset", None) == getattr(handler, "offset", None)

    def test_cd_handlers_do_not_serialize(self):
        assert StoreTransitionHandler(0, FakeHC()).serialize() is None
        assert LoadGlobalHandler(0).serialize() is None

    def test_deserialize_rejects_cd_kinds(self):
        with pytest.raises(ValueError):
            deserialize_handler({"kind": "store_transition", "offset": 0})


class TestICBehaviorEndToEnd:
    def test_monomorphic_site_hits_after_first_miss(self):
        result = run_jsl(
            """
            function get(o) { return o.x; }
            var a = {x: 1};
            var total = 0;
            for (var i = 0; i < 10; i++) { total += get(a); }
            """
        )
        # The load site in get() misses once, then hits 9 times.
        assert result.counters.ic_hits >= 9

    def test_polymorphic_site_caches_both_shapes(self):
        result = run_jsl(
            """
            function get(o) { return o.v; }
            var a = {v: 1};
            var b = {other: 0, v: 2};
            var total = 0;
            for (var i = 0; i < 10; i++) { total += get(a) + get(b); }
            console.log(total);
            """
        )
        assert result.console == ["30"]
        sites = [
            s
            for s in result.feedback.all_sites()
            if s.info.name == "v" and s.info.kind is SiteKind.NAMED_LOAD
        ]
        assert any(s.state is ICState.POLYMORPHIC for s in sites)

    def test_megamorphic_site_keeps_working(self):
        result = run_jsl(
            """
            function get(o) { return o.v; }
            var shapes = [
              {v: 1}, {a: 0, v: 2}, {b: 0, v: 3}, {c: 0, v: 4},
              {d: 0, v: 5}, {e: 0, v: 6}
            ];
            var total = 0;
            for (var r = 0; r < 3; r++) {
              for (var i = 0; i < shapes.length; i++) { total += get(shapes[i]); }
            }
            console.log(total);
            """
        )
        assert result.console == ["63"]
        sites = [s for s in result.feedback.all_sites() if s.info.name == "v"]
        assert any(s.state is ICState.MEGAMORPHIC for s in sites)

    def test_transition_handler_fast_path(self):
        # Second object takes the cached transition without a runtime call.
        result = run_jsl(
            """
            function make(v) { var o = {}; o.x = v; return o; }
            var a = make(1);
            var b = make(2);
            console.log(a.x + b.x);
            """
        )
        assert result.console == ["3"]
        store_sites = [
            s for s in result.feedback.all_sites()
            if s.info.name == "x" and s.info.kind is SiteKind.NAMED_STORE
        ]
        assert len(store_sites) == 1
        assert store_sites[0].state is ICState.MONOMORPHIC

    def test_proto_chain_handler_invalidated_by_proto_mutation(self):
        # After mutating the prototype, the cached chain handler must fall
        # back to the runtime and return the new value — correctness over
        # speed.
        result = run_jsl(
            """
            function C() {}
            C.prototype.v = "old";
            var o = new C();
            var first = o.v;
            var second = o.v;     // cached proto-chain hit
            C.prototype.w = 1;    // transitions the prototype's hidden class
            var third = o.v;      // cached chain is stale -> re-miss
            console.log(first, second, third);
            """
        )
        assert result.console == ["old old old"]

    def test_proto_value_change_visible(self):
        result = run_jsl(
            """
            function C() {}
            C.prototype.v = "one";
            var o = new C();
            var a = o.v;
            C.prototype.v = "two";  // same layout, new value at same offset
            var b = o.v;
            console.log(a, b);
            """
        )
        assert result.console == ["one two"]

    def test_array_length_handler(self):
        result = run_jsl(
            """
            var a = [1, 2, 3];
            var n = 0;
            for (var i = 0; i < 5; i++) { n = a.length; }
            console.log(n);
            """
        )
        assert result.console == ["3"]

    def test_not_found_handler_returns_undefined_repeatedly(self):
        result = run_jsl(
            """
            var o = {};
            var count = 0;
            for (var i = 0; i < 5; i++) { if (o.missing === undefined) count++; }
            console.log(count);
            """
        )
        assert result.console == ["5"]

    def test_dictionary_mode_uncacheable_but_correct(self):
        result = run_jsl(
            """
            var o = {a: 1, b: 2};
            delete o.a;
            o.c = 3;
            console.log(o.a, o.b, o.c);
            """
        )
        assert result.console == ["undefined 2 3"]


class TestStubCache:
    def test_keyed_string_loads_hit_stub_cache(self):
        result = run_jsl(
            """
            var o = {alpha: 1, beta: 2};
            var keys = ["alpha", "beta"];
            var total = 0;
            for (var r = 0; r < 10; r++) {
              for (var i = 0; i < keys.length; i++) { total += o[keys[i]]; }
            }
            console.log(total);
            """
        )
        assert result.console == ["30"]
        # 2 keyed-name misses (one per property), the rest stub-cache hits.
        assert len(result.vm.ic.stub_cache) >= 2

    def test_keyed_string_store_transitions_via_stub(self):
        result = run_jsl(
            """
            function build(name) { var o = {}; o[name] = 1; return o; }
            var a = build("k");
            var b = build("k");
            console.log(a.k + b.k);
            """
        )
        assert result.console == ["2"]

    def test_keyed_integer_access_uses_element_handlers(self):
        result = run_jsl(
            """
            var a = [0, 0, 0];
            for (var i = 0; i < 3; i++) { a[i] = i * 2; }
            console.log(a[0] + a[1] + a[2]);
            """
        )
        assert result.console == ["6"]


class TestDictionaryModePrototypes:
    def test_dict_mode_prototype_gaining_property_is_visible(self):
        """Regression: a NotFound handler must never be cached over a
        dictionary-mode prototype — dictionary stores don't change the
        hidden class, so nothing would ever invalidate it."""
        result = run_jsl(
            """
            function C() {}
            C.prototype.x = 1;
            delete C.prototype.x;      // prototype drops to dictionary mode
            var o = new C();
            var a = o.later;           // absent
            var b = o.later;           // absent again (uncached runtime walk)
            C.prototype.later = 42;    // dictionary store: no shape change
            var c = o.later;           // must observe the new value
            console.log(a, b, c);
            """
        )
        assert result.console == ["undefined undefined 42"]

    def test_dict_mode_prototype_field_reads_stay_fresh(self):
        result = run_jsl(
            """
            function C() {}
            C.prototype.v = "first";
            C.prototype.unused = 0;
            delete C.prototype.unused; // dictionary mode
            var o = new C();
            var a = o.v;
            C.prototype.v = "second";  // dictionary store
            var b = o.v;
            console.log(a, b);
            """
        )
        assert result.console == ["first second"]
