"""Subprocess worker for the daemon chaos suite (tests/test_server_chaos.py).

Not a test module — the parent test spawns this with::

    python tests/_chaos_client.py <mode> <socket> <index> <seed>

modes:

* ``warm``  — run workload ``index`` cold against the daemon and publish
  its per-script records.
* ``reuse`` — run workload ``index`` cold (no store, the reference), then
  again through the daemon-backed store; print both runs' evidence.
* ``kill``  — warm + reuse, print ``READY``, wait for the parent on
  stdin (it SIGKILLs the daemon meanwhile), then reuse again and report
  the degraded run.  Any uncaught exception fails the parent's assert on
  our exit code — "never an exception" is the contract under test.

The last stdout line is always a JSON object for the parent to parse.
"""

from __future__ import annotations

import json
import sys

from repro.core.engine import Engine
from repro.server.client import RemoteRecordStore


def workload(index: int) -> list:
    """Deterministic per-index workload; shapes are disjoint across
    indices (distinct property names), so records never overlap."""
    lib = f"""
function Thing{index}(seed) {{
  this.alpha{index} = seed;
  this.beta{index} = seed * 2;
}}
Thing{index}.prototype.total = function () {{
  return this.alpha{index} + this.beta{index};
}};
var acc{index} = 0;
for (var i = 0; i < 30; i = i + 1) {{
  var t = new Thing{index}(i);
  acc{index} = acc{index} + t.total();
}}
console.log("lib{index}:", acc{index});
"""
    app = f"""
var cfg{index} = {{ depth: {index + 2}, label: "w{index}" }};
var sum{index} = 0;
for (var j = 0; j < 15; j = j + 1) {{
  sum{index} = sum{index} + cfg{index}.depth;
}}
console.log("app{index}:", cfg{index}.label, sum{index});
"""
    return [(f"lib_{index}.jsl", lib), (f"app_{index}.jsl", app)]


def _evidence(profile, cold_profile=None) -> dict:
    counters = profile.counters.as_dict()
    blob = {
        "mode": profile.mode,
        "output": profile.console_output,
        "ic_misses": counters["ic_misses"],
        "misses_averted": counters["ic_hits_on_preloaded"],
        "ric_remote_hits": counters["ric_remote_hits"],
        "ric_remote_misses": counters["ric_remote_misses"],
        "ric_remote_fallbacks": counters["ric_remote_fallbacks"],
    }
    if cold_profile is not None:
        blob["cold_output"] = cold_profile.console_output
        blob["cold_ic_misses"] = cold_profile.counters.ic_misses
    return blob


def main(argv: list) -> int:
    mode, socket_path, index, seed = (
        argv[0],
        argv[1],
        int(argv[2]),
        int(argv[3]),
    )
    scripts = workload(index)
    store = RemoteRecordStore(socket_path, timeout_s=2.0, retry_after_s=0.05)

    if mode == "warm":
        engine = Engine(seed=seed, record_store=store)
        profile = engine.run(scripts, name=f"warm-{index}", use_store=True)
        published = engine.publish_records(counters=profile.counters)
        blob = _evidence(profile)
        blob["published"] = published
        print(json.dumps(blob))
        return 0

    if mode == "reuse":
        cold = Engine(seed=seed).run(scripts, name=f"cold-{index}")
        engine = Engine(seed=seed + 1, record_store=store)
        profile = engine.run(scripts, name=f"reuse-{index}", use_store=True)
        print(json.dumps(_evidence(profile, cold)))
        return 0

    if mode == "kill":
        cold = Engine(seed=seed).run(scripts, name=f"cold-{index}")
        warm_engine = Engine(seed=seed + 1, record_store=store)
        warm_engine.run(scripts, name=f"warm-{index}", use_store=True)
        warm_engine.publish_records()
        engine = Engine(seed=seed + 2, record_store=store)
        alive = engine.run(scripts, name=f"alive-{index}", use_store=True)
        print("READY", flush=True)
        sys.stdin.readline()  # parent SIGKILLs the daemon, then writes a line
        dead = engine.run(scripts, name=f"dead-{index}", use_store=True)
        print(
            json.dumps(
                {
                    "alive": _evidence(alive, cold),
                    "dead": _evidence(dead, cold),
                }
            )
        )
        return 0

    print(json.dumps({"error": f"unknown mode {mode!r}"}))
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
