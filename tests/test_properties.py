"""Property-based tests (hypothesis) on core invariants."""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode.cache import code_from_json, code_to_json
from repro.bytecode.compiler import compile_source
from repro.core.engine import Engine
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind
from repro.runtime.heap import Heap
from repro.runtime.hidden_class import HiddenClassRegistry
from repro.runtime.values import (
    NULL,
    UNDEFINED,
    loose_equals,
    number_to_string,
    strict_equals,
    to_boolean,
    to_int32,
    to_number,
    to_string,
    to_uint32,
)

# -- strategies ---------------------------------------------------------------

identifiers = st.from_regex(r"[a-zA-Z_$][a-zA-Z0-9_$]{0,8}", fullmatch=True).filter(
    lambda s: s
    not in {
        "var", "let", "const", "function", "return", "if", "else", "while",
        "do", "for", "break", "continue", "new", "delete", "typeof", "in",
        "instanceof", "this", "null", "undefined", "true", "false", "throw",
        "try", "catch", "finally", "switch", "case", "default",
    }
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)

guest_primitives = st.one_of(
    st.just(UNDEFINED),
    st.just(NULL),
    st.booleans(),
    st.floats(width=32),
    st.text(max_size=20),
)


# -- lexer properties ----------------------------------------------------------


class TestLexerProperties:
    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_number_literals_round_trip(self, value):
        text = repr(value)
        token = tokenize(text)[0]
        assert token.kind is TokenKind.NUMBER
        assert math.isclose(token.value, value, rel_tol=1e-12)

    @given(st.text(alphabet=st.characters(blacklist_characters='"\\\n'), max_size=30))
    def test_string_literals_round_trip(self, text):
        token = tokenize(json.dumps(text))[0]
        assert token.kind is TokenKind.STRING
        assert token.value == text

    @given(identifiers)
    def test_identifiers_round_trip(self, name):
        token = tokenize(name)[0]
        assert token.kind is TokenKind.IDENT
        assert token.value == name

    @given(st.lists(identifiers, min_size=1, max_size=10))
    def test_token_count_matches_words(self, names):
        tokens = tokenize(" ".join(names))
        assert len(tokens) == len(names) + 1  # + EOF


# -- value-model properties -------------------------------------------------------


class TestValueProperties:
    @given(guest_primitives)
    def test_strict_equals_is_reflexive_except_nan(self, value):
        if isinstance(value, float) and math.isnan(value):
            assert not strict_equals(value, value)
        else:
            assert strict_equals(value, value)

    @given(guest_primitives, guest_primitives)
    def test_strict_equals_symmetric(self, a, b):
        assert strict_equals(a, b) == strict_equals(b, a)

    @given(guest_primitives, guest_primitives)
    def test_loose_equals_symmetric(self, a, b):
        assert loose_equals(a, b) == loose_equals(b, a)

    @given(guest_primitives)
    def test_strict_implies_loose(self, value):
        if strict_equals(value, value):
            assert loose_equals(value, value)

    @given(finite_floats)
    def test_number_string_round_trip(self, value):
        assert to_number(number_to_string(value)) == value

    @given(st.floats())
    def test_to_int32_in_range(self, value):
        result = to_int32(value)
        assert -(2**31) <= result < 2**31

    @given(st.floats())
    def test_to_uint32_in_range(self, value):
        assert 0 <= to_uint32(value) < 2**32

    @given(finite_floats)
    def test_int32_uint32_congruent(self, value):
        assert to_int32(value) % (2**32) == to_uint32(value)

    @given(guest_primitives)
    def test_to_string_never_fails(self, value):
        assert isinstance(to_string(value), str)

    @given(guest_primitives)
    def test_to_boolean_total(self, value):
        assert to_boolean(value) in (True, False)


# -- hidden-class properties ---------------------------------------------------------


class TestHiddenClassProperties:
    @given(st.lists(identifiers, min_size=1, max_size=12, unique=True))
    @settings(max_examples=40)
    def test_layout_offsets_are_dense_and_ordered(self, names):
        registry = HiddenClassRegistry(Heap(seed=0))
        hc = registry.create_root("builtin", "b", None)
        for name in names:
            hc, _ = registry.transition(hc, name, "s")
        assert list(hc.layout.keys()) == names
        assert list(hc.layout.values()) == list(range(len(names)))

    @given(st.lists(identifiers, min_size=1, max_size=10, unique=True))
    @settings(max_examples=40)
    def test_same_insertion_order_shares_classes(self, names):
        registry = HiddenClassRegistry(Heap(seed=0))
        root = registry.create_root("builtin", "b", None)
        hc_a = root
        for name in names:
            hc_a, _ = registry.transition(hc_a, name, "s")
        count_after_first = registry.count()
        hc_b = root
        for name in names:
            hc_b, _ = registry.transition(hc_b, name, "s")
        assert hc_a is hc_b
        assert registry.count() == count_after_first

    @given(
        st.lists(identifiers, min_size=2, max_size=6, unique=True),
        st.randoms(),
    )
    @settings(max_examples=40)
    def test_different_insertion_orders_diverge(self, names, rng):
        shuffled = list(names)
        rng.shuffle(shuffled)
        if shuffled == names:
            return
        registry = HiddenClassRegistry(Heap(seed=0))
        root = registry.create_root("builtin", "b", None)
        hc_a = root
        for name in names:
            hc_a, _ = registry.transition(hc_a, name, "s")
        hc_b = root
        for name in shuffled:
            hc_b, _ = registry.transition(hc_b, name, "s")
        assert hc_a is not hc_b
        assert set(hc_a.layout) == set(hc_b.layout)


# -- end-to-end properties ----------------------------------------------------------


def _object_literal(keys, values):
    parts = ", ".join(f"{k}: {v}" for k, v in zip(keys, values))
    return "{" + parts + "}"


class TestEndToEndProperties:
    @given(
        st.lists(identifiers, min_size=1, max_size=6, unique=True),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_object_round_trip_via_json(self, keys, data):
        values = [
            data.draw(st.integers(min_value=-1000, max_value=1000))
            for _ in keys
        ]
        literal = _object_literal(keys, values)
        engine = Engine(seed=1)
        profile = engine.run(
            f"var o = {literal}; console.log(JSON.stringify(o));", name="p"
        )
        expected = "{" + ",".join(f'"{k}":{v}' for k, v in zip(keys, values)) + "}"
        assert profile.console_output == [expected]

    @given(st.lists(st.integers(min_value=-99, max_value=99), min_size=0, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_array_sum_matches_python(self, numbers):
        literal = "[" + ",".join(str(n) for n in numbers) + "]"
        engine = Engine(seed=1)
        profile = engine.run(
            f"""
            var a = {literal};
            var total = 0;
            for (var i = 0; i < a.length; i++) {{ total += a[i]; }}
            console.log(total);
            """,
            name="p",
        )
        assert profile.console_output == [number_to_string(float(sum(numbers)))]

    @given(st.lists(identifiers, min_size=1, max_size=5, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_ric_preserves_output_for_generated_programs(self, keys):
        """The soundness property: for an arbitrary generated program, the
        RIC Reuse run must print exactly what the Initial run printed."""
        assignments = "\n".join(f"o.{k} = {i};" for i, k in enumerate(keys))
        reads = " + ".join(f"o.{k}" for k in keys)
        source = f"""
        function build() {{ var o = {{}}; {assignments} return o; }}
        var o = build();
        var p = build();
        console.log({reads}, JSON.stringify(p));
        """
        engine = Engine(seed=2)
        initial = engine.run(source, name="p")
        record = engine.extract_icrecord()
        ric = engine.run(source, name="p", icrecord=record)
        assert initial.console_output == ric.console_output
        assert ric.counters.ic_misses <= initial.counters.ic_misses

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_fibonacci_matches_python(self, n):
        def fib(k):
            a, b = 0, 1
            for _ in range(k):
                a, b = b, a + b
            return a

        engine = Engine(seed=1)
        profile = engine.run(
            f"""
            var memo = {{}};
            function fib(n) {{
              if (n < 2) return n;
              if (memo[n] !== undefined) return memo[n];
              var r = fib(n - 1) + fib(n - 2);
              memo[n] = r;
              return r;
            }}
            console.log(fib({n}));
            """,
            name="p",
        )
        assert profile.console_output == [str(fib(n))]


class TestRecordSerializationProperties:
    @given(st.lists(identifiers, min_size=1, max_size=5, unique=True))
    @settings(max_examples=15, deadline=None)
    def test_icrecord_json_round_trip(self, keys):
        from repro.ric.serialize import record_from_json, record_to_json

        assignments = "\n".join(f"o.{k} = {i};" for i, k in enumerate(keys))
        engine = Engine(seed=3)
        engine.run(f"var o = {{}};\n{assignments}", name="p")
        record = engine.extract_icrecord()
        round_tripped = record_from_json(
            json.loads(json.dumps(record_to_json(record)))
        )
        assert record_to_json(round_tripped) == record_to_json(record)

    @given(st.lists(identifiers, min_size=1, max_size=5, unique=True))
    @settings(max_examples=15, deadline=None)
    def test_compiled_code_json_round_trip(self, keys):
        source = "\n".join(f"var {k} = function () {{ return {i}; }};" for i, k in enumerate(keys))
        code = compile_source(source, "p.jsl")
        restored = code_from_json(json.loads(json.dumps(code_to_json(code))))
        assert restored.instructions == code.instructions
        assert len(list(restored.iter_code_objects())) == len(
            list(code.iter_code_objects())
        )
