"""Tests for the extended builtin surface (sort/some/every/find, string
padding, Math extras, Object.create, Number.isInteger)."""

from tests.helpers import console_of, eval_jsl


class TestArrayExtensions:
    def test_sort_default_string_order(self):
        assert console_of(
            "var a = [10, 9, 2, 1]; a.sort(); console.log(a.join(','));"
        ) == ["1,10,2,9"]  # JS default sort is lexicographic!

    def test_sort_with_comparator(self):
        assert console_of(
            """
            var a = [10, 9, 2, 1];
            a.sort(function (x, y) { return x - y; });
            console.log(a.join(","));
            """
        ) == ["1,2,9,10"]

    def test_sort_returns_the_array(self):
        assert console_of(
            "var a = [3,1]; console.log(a.sort() === a);"
        ) == ["true"]

    def test_sort_undefined_last(self):
        assert console_of(
            "var a = [undefined, 'b', 'a']; a.sort(); console.log(a.join('|'));"
        ) == ["a|b|"]

    def test_some_every(self):
        src = """
        var nums = [1, 2, 3, 4];
        console.log(
          nums.some(function (n) { return n > 3; }),
          nums.some(function (n) { return n > 9; }),
          nums.every(function (n) { return n > 0; }),
          nums.every(function (n) { return n > 1; })
        );
        """
        assert console_of(src) == ["true false true false"]

    def test_some_short_circuits(self):
        src = """
        var calls = 0;
        [1, 2, 3].some(function (n) { calls++; return n === 1; });
        console.log(calls);
        """
        assert console_of(src) == ["1"]

    def test_find(self):
        src = """
        var users = [{id: 1, name: "a"}, {id: 2, name: "b"}];
        var found = users.find(function (u) { return u.id === 2; });
        var missing = users.find(function (u) { return u.id === 9; });
        console.log(found.name, missing);
        """
        assert console_of(src) == ["b undefined"]

    def test_last_index_of(self):
        assert console_of(
            "console.log([1, 2, 1, 3].lastIndexOf(1), [1].lastIndexOf(9));"
        ) == ["2 -1"]


class TestStringExtensions:
    def test_starts_ends_includes(self):
        src = """
        var s = "hello world";
        console.log(s.startsWith("hello"), s.endsWith("world"),
                    s.includes("lo wo"), s.includes("xyz"));
        """
        assert console_of(src) == ["true true true false"]

    def test_repeat(self):
        assert console_of("console.log('ab'.repeat(3), 'x'.repeat(0) === '');") == [
            "ababab true"
        ]

    def test_pad_start_end(self):
        src = """
        console.log("5".padStart(3, "0"), "5".padEnd(3, "-"), "abc".padStart(2));
        """
        assert console_of(src) == ["005 5-- abc"]


class TestMathExtensions:
    def test_log_exp(self):
        assert eval_jsl("Math.round(Math.exp(Math.log(42)))") == 42.0

    def test_log_edge_cases(self):
        assert eval_jsl("Math.log(0)") == float("-inf")
        assert eval_jsl("isNaN(Math.log(-1))") is True

    def test_trig(self):
        assert eval_jsl("Math.sin(0)") == 0.0
        assert eval_jsl("Math.cos(0)") == 1.0
        assert eval_jsl("Math.round(Math.atan2(1, 1) * 4 * 1000) / 1000") == round(
            3.141592653589793, 3
        )

    def test_trunc_and_sign(self):
        src = "console.log(Math.trunc(2.9), Math.trunc(-2.9), Math.sign(-5), Math.sign(3), Math.sign(0));"
        assert console_of(src) == ["2 -2 -1 1 0"]


class TestObjectExtensions:
    def test_get_prototype_of(self):
        src = """
        function C() {}
        var o = new C();
        console.log(Object.getPrototypeOf(o) === C.prototype);
        """
        assert console_of(src) == ["true"]

    def test_object_create_inherits(self):
        src = """
        var base = {greet: function () { return "hi " + this.name; }};
        var child = Object.create(base);
        child.name = "ada";
        console.log(child.greet(), Object.getPrototypeOf(child) === base);
        """
        assert console_of(src) == ["hi ada true"]

    def test_object_create_null_prototype(self):
        src = """
        var bare = Object.create(null);
        bare.k = 1;
        console.log(bare.k, Object.getPrototypeOf(bare) === null, bare.toString);
        """
        assert console_of(src) == ["1 true undefined"]

    def test_object_create_invalid_proto_throws(self):
        src = """
        var msg = "";
        try { Object.create(42); } catch (e) { msg = e.name; }
        console.log(msg);
        """
        assert console_of(src) == ["TypeError"]

    def test_number_is_integer(self):
        src = "console.log(Number.isInteger(4), Number.isInteger(4.5), Number.isInteger('4'), Number.isInteger(NaN));"
        assert console_of(src) == ["true false false false"]


class TestExtensionsUnderRIC:
    def test_object_create_roots_validate_across_runs(self):
        from repro.core.engine import Engine

        source = """
        var proto = {describe: function () { return "proto"; }};
        function make(i) {
          var o = Object.create(proto);
          o.index = i;
          return o;
        }
        var items = [make(0), make(1), make(2)];
        var total = 0;
        for (var i = 0; i < items.length; i++) { total += items[i].index; }
        console.log(total, items[0].describe());
        """
        engine = Engine(seed=8)
        initial = engine.run(source, name="oc")
        record = engine.extract_icrecord()
        ric = engine.run(source, name="oc", icrecord=record)
        assert ric.console_output == initial.console_output == ["3 proto"]
        assert ric.counters.ric_validations > 0

    def test_sorted_workload_stable_across_ric(self):
        from repro.core.engine import Engine

        source = """
        var people = [
          {name: "carol", age: 35}, {name: "alice", age: 28}, {name: "bob", age: 42}
        ];
        people.sort(function (a, b) { return a.age - b.age; });
        var names = people.map(function (p) { return p.name; });
        console.log(names.join(","));
        """
        engine = Engine(seed=8)
        initial = engine.run(source, name="s")
        record = engine.extract_icrecord()
        ric = engine.run(source, name="s", icrecord=record)
        assert initial.console_output == ric.console_output == ["alice,carol,bob"]


class TestFunctionBind:
    def test_bind_fixes_this(self):
        src = """
        function who() { return this.name; }
        var bound = who.bind({name: "ada"});
        console.log(bound(), bound.call({name: "other"}));
        """
        # bind wins even over an explicit .call receiver.
        assert console_of(src) == ["ada ada"]

    def test_bind_partial_application(self):
        src = """
        function add3(a, b, c) { return a + b + c; }
        var add1and2 = add3.bind(null, 1, 2);
        console.log(add1and2(3), add1and2(10));
        """
        assert console_of(src) == ["6 13"]

    def test_bound_method_survives_detachment(self):
        src = """
        var counter = {n: 0, inc: function () { this.n++; return this.n; }};
        var inc = counter.inc.bind(counter);
        inc(); inc();
        console.log(counter.n);
        """
        assert console_of(src) == ["2"]

    def test_bind_of_non_function_throws(self):
        src = """
        var msg = "";
        try { Function.prototype.bind.call(42); } catch (e) { msg = e.name; }
        console.log(msg);
        """
        assert console_of(src) == ["TypeError"]
