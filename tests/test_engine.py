"""Tests for the Engine orchestration layer, RunProfile and Counters."""

import math

import pytest

from repro.core.engine import Engine, WorkloadMeasurement
from repro.interpreter.cost_model import CPI, modeled_time_ms
from repro.lang.errors import JSLRuntimeError, JSLSyntaxError
from repro.stats.counters import (
    CATEGORY_EXECUTE,
    CATEGORY_IC_MISS,
    MISS_GLOBAL,
    MISS_HANDLER,
    MISS_OTHER,
    Counters,
)

SOURCE = """
function T(v) { this.v = v; }
var items = [new T(1), new T(2), new T(3)];
var total = 0;
for (var i = 0; i < items.length; i++) { total += items[i].v; }
console.log("total", total);
"""


class TestEngineRuns:
    def test_run_returns_profile(self, engine):
        profile = engine.run(SOURCE, name="t")
        assert profile.name == "t"
        assert profile.mode == "initial"
        assert profile.console_output == ["total 6"]
        assert profile.total_instructions > 0
        assert profile.heap_bytes > 0

    def test_run_modes(self, engine):
        engine.run(SOURCE, name="t")
        record = engine.extract_icrecord()
        ric = engine.run(SOURCE, name="t", icrecord=record)
        assert ric.mode == "reuse-ric"

    def test_each_run_gets_fresh_runtime(self, engine):
        first = engine.run("var counter = 1; console.log(counter);", name="t")
        second = engine.run("console.log(typeof counter);", name="t")
        assert first.console_output == ["1"]
        assert second.console_output == ["undefined"]

    def test_explicit_seed_reproduces_addresses(self, engine):
        engine.run(SOURCE, name="t", seed=77)
        first = [hc.address for hc in engine.last_run.runtime.hidden_classes.all_classes]
        engine.run(SOURCE, name="t", seed=77)
        second = [hc.address for hc in engine.last_run.runtime.hidden_classes.all_classes]
        assert first == second

    def test_default_runs_differ_in_addresses(self, engine):
        engine.run(SOURCE, name="t")
        first = engine.last_run.runtime.heap._next_address
        engine.run(SOURCE, name="t")
        second = engine.last_run.runtime.heap._next_address
        assert first != second

    def test_syntax_error_propagates(self, engine):
        with pytest.raises(JSLSyntaxError):
            engine.run("var = ;", name="bad")

    def test_last_run_handle_exposes_session_state(self, engine):
        assert engine.last_run is None
        engine.run(SOURCE, name="t")
        session = engine.last_run
        assert session is not None
        assert session.runtime is not None
        assert session.feedback is not None
        assert session.profile is not None and session.profile.name == "t"

    def test_deprecated_last_runtime_shims_still_work(self, engine):
        engine.run(SOURCE, name="t")
        with pytest.warns(DeprecationWarning, match="last_run"):
            runtime = engine._last_runtime
        assert runtime is engine.last_run.runtime
        with pytest.warns(DeprecationWarning, match="last_run"):
            feedback = engine._last_feedback
        assert feedback is engine.last_run.feedback

    def test_uncaught_guest_error_becomes_runtime_error(self, engine):
        with pytest.raises(JSLRuntimeError, match="uncaught"):
            engine.run("throw new Error('kaput');", name="bad")

    def test_measure_workload_protocol(self, engine):
        measurement = engine.measure_workload(SOURCE, name="t")
        assert isinstance(measurement, WorkloadMeasurement)
        assert measurement.initial.mode == "initial"
        assert measurement.conventional.mode == "reuse-conventional"
        assert measurement.ric.mode == "reuse-ric"
        # On a tiny program RIC's bookkeeping can slightly outweigh its
        # savings — the paper's gains come from library-scale workloads.
        assert 0.0 <= measurement.normalized_instructions <= 1.05
        assert measurement.miss_rate_reduction_pp >= 0.0

    def test_multi_script_workloads_execute_in_order(self, engine):
        scripts = [
            ("a.jsl", "var shared = 'from-a'; console.log('a');"),
            ("b.jsl", "console.log('b sees', shared);"),
        ]
        profile = engine.run(scripts, name="pair")
        assert profile.console_output == ["a", "b sees from-a"]

    def test_profile_summary_keys(self, engine):
        summary = engine.run(SOURCE, name="t").summary()
        assert summary["name"] == "t"
        for key in (
            "total_instructions",
            "ic_miss_rate_pct",
            "miss_breakdown_pct",
            "hidden_classes_created",
            "heap_bytes",
        ):
            assert key in summary


class TestCounters:
    def test_empty_counters(self):
        counters = Counters()
        assert counters.total_instructions == 0
        assert counters.ic_miss_rate == 0.0
        assert counters.ic_miss_handling_fraction == 0.0
        assert counters.context_independent_handler_fraction == 0.0
        assert counters.miss_rate_contribution(MISS_OTHER) == 0.0

    def test_charge_and_fractions(self):
        counters = Counters()
        counters.charge(CATEGORY_EXECUTE, 60)
        counters.charge(CATEGORY_IC_MISS, 40)
        assert counters.total_instructions == 100
        assert counters.ic_miss_handling_fraction == 0.4

    def test_record_miss_buckets(self):
        counters = Counters()
        counters.ic_accesses = 10
        counters.record_miss(MISS_HANDLER)
        counters.record_miss(MISS_GLOBAL)
        counters.record_miss(MISS_OTHER)
        counters.record_miss(MISS_OTHER)
        assert counters.ic_misses == 4
        assert counters.ic_miss_rate == 0.4
        assert counters.miss_rate_contribution(MISS_OTHER) == 0.2
        total = sum(
            counters.miss_rate_contribution(reason)
            for reason in (MISS_HANDLER, MISS_GLOBAL, MISS_OTHER)
        )
        assert math.isclose(total, counters.ic_miss_rate)

    def test_as_dict_round_trip(self):
        counters = Counters()
        counters.charge(CATEGORY_EXECUTE, 5)
        data = counters.as_dict()
        assert data["total_instructions"] == 5
        assert data["instructions"][CATEGORY_EXECUTE] == 5


class TestModeledTime:
    def test_weights_applied(self):
        time_a = modeled_time_ms({"execute": 1000, "ic_miss": 0})
        time_b = modeled_time_ms({"execute": 0, "ic_miss": 1000})
        assert time_b > time_a  # miss handling carries a CPI premium
        assert math.isclose(time_b / time_a, CPI["ic_miss"] / CPI["execute"])

    def test_profile_exposes_modeled_time(self, engine):
        profile = engine.run(SOURCE, name="t")
        assert profile.modeled_time_ms > 0
        # Modeled time is a pure function of the counters.
        assert math.isclose(
            profile.modeled_time_ms, modeled_time_ms(profile.counters.instructions)
        )


class TestRunCli:
    def test_run_files(self, tmp_path, capsys):
        from repro.harness.run_cli import main

        script = tmp_path / "s.jsl"
        script.write_text("console.log('cli works');")
        assert main([str(script)]) == 0
        assert "cli works" in capsys.readouterr().out

    def test_stats_flag(self, tmp_path, capsys):
        from repro.harness.run_cli import main

        script = tmp_path / "s.jsl"
        script.write_text("var o = {a: 1}; console.log(o.a);")
        assert main(["--stats", str(script)]) == 0
        captured = capsys.readouterr()
        assert "IC accesses" in captured.err

    def test_record_round_trip(self, tmp_path, capsys):
        from repro.harness.run_cli import main

        script = tmp_path / "s.jsl"
        script.write_text(
            "function C() { this.v = 1; } var a = new C(); var b = new C();"
            "function r(o) { return o.v; } r(a); r(b); console.log('ok');"
        )
        record = tmp_path / "s.ric"
        assert main(["--stats", "--record", str(record), str(script)]) == 0
        capsys.readouterr()
        assert record.exists()
        assert main(["--stats", "--record", str(record), str(script)]) == 0
        captured = capsys.readouterr()
        assert "preloads" in captured.err
        # The second run must have preloaded something.
        assert "0 preloads" not in captured.err

    def test_disassemble(self, tmp_path, capsys):
        from repro.harness.run_cli import main

        script = tmp_path / "s.jsl"
        script.write_text("var x = 1;")
        assert main(["--disassemble", str(script)]) == 0
        assert "LOAD_CONST" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        from repro.harness.run_cli import main

        assert main(["/nonexistent/nope.jsl"]) == 2

    def test_guest_error_exit_code(self, tmp_path, capsys):
        from repro.harness.run_cli import EXIT_RUNTIME, main

        script = tmp_path / "s.jsl"
        script.write_text("throw 'bad';")
        assert main([str(script)]) == EXIT_RUNTIME

    def test_parse_error_exit_code(self, tmp_path, capsys):
        from repro.harness.run_cli import EXIT_PARSE, main

        script = tmp_path / "s.jsl"
        script.write_text("var = ;")
        assert main([str(script)]) == EXIT_PARSE

    def test_trace_flag(self, tmp_path, capsys):
        from repro.harness.run_cli import main

        script = tmp_path / "s.jsl"
        script.write_text("var o = {a: 1}; console.log(o.a);")
        assert main(["--trace", str(script)]) == 0
        assert "ic_miss" in capsys.readouterr().err
