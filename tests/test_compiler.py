"""Tests for the bytecode compiler, disassembler and code cache."""

import json

import pytest

from repro.bytecode.cache import (
    CodeCache,
    code_from_json,
    code_to_json,
    source_hash,
)
from repro.bytecode.code import SiteKind
from repro.bytecode.compiler import compile_source
from repro.bytecode.disasm import disassemble
from repro.bytecode.opcodes import Op
from repro.lang.errors import JSLCompileError


def ops_of(code):
    return [instruction[0] for instruction in code.instructions]


class TestCompilation:
    def test_toplevel_ends_with_return_undefined(self):
        code = compile_source("var x = 1;")
        assert ops_of(code)[-2:] == [Op.LOAD_UNDEFINED, Op.RETURN]

    def test_determinism(self):
        source = "function f(a) { return a.x + a.y; } var o = {x: 1, y: 2}; f(o);"
        a = compile_source(source, "d.jsl")
        b = compile_source(source, "d.jsl")
        assert a.instructions == b.instructions
        assert [s.site_key for s in a.feedback_slots] == [
            s.site_key for s in b.feedback_slots
        ]

    def test_member_load_allocates_named_load_slot(self):
        code = compile_source("var v = o.prop;")
        kinds = [slot.kind for slot in code.feedback_slots]
        assert SiteKind.NAMED_LOAD in kinds

    def test_member_store_allocates_named_store_slot(self):
        code = compile_source("o.prop = 1;")
        assert SiteKind.NAMED_STORE in [s.kind for s in code.feedback_slots]

    def test_object_literal_props_are_store_sites(self):
        code = compile_source("var o = {a: 1, b: 2};")
        stores = [s for s in code.feedback_slots if s.kind is SiteKind.NAMED_STORE]
        assert {s.name for s in stores} >= {"a", "b"}

    def test_keyed_sites(self):
        code = compile_source("o[k] = o[j];")
        kinds = [s.kind for s in code.feedback_slots]
        assert SiteKind.KEYED_LOAD in kinds and SiteKind.KEYED_STORE in kinds

    def test_global_sites(self):
        code = compile_source("var g = 1; x = g;")
        kinds = [s.kind for s in code.feedback_slots]
        assert SiteKind.GLOBAL_LOAD in kinds and SiteKind.GLOBAL_STORE in kinds

    def test_compound_member_assignment_has_two_distinct_sites(self):
        code = compile_source("o.n += 1;")
        sites = [s for s in code.feedback_slots if s.name == "n"]
        assert {s.kind for s in sites} == {SiteKind.NAMED_LOAD, SiteKind.NAMED_STORE}
        assert len({s.site_key for s in sites}) == 2

    def test_site_keys_unique_within_program(self):
        source = "o.x = o.x + o.x; p.x = 1; function f(q) { return q.x; }"
        code = compile_source(source)
        keys = [
            s.site_key
            for c in code.iter_code_objects()
            for s in c.feedback_slots
        ]
        assert len(keys) == len(set(keys))

    def test_locals_resolved_within_function(self):
        code = compile_source("function f(a) { var b = a; return b; }")
        inner = next(c for c in code.iter_code_objects() if c.name == "f")
        assert inner.local_names[:2] == ["a", "b"]
        assert Op.LOAD_LOCAL in ops_of(inner)
        assert Op.LOAD_GLOBAL not in ops_of(inner)

    def test_free_variables_use_env_ops(self):
        code = compile_source(
            "function outer(x) { return function () { return x; }; }"
        )
        innermost = [c for c in code.iter_code_objects()][-1]
        assert Op.LOAD_ENV in ops_of(innermost)

    def test_nested_code_objects_enumerated(self):
        code = compile_source("function a() { function b() {} } var c = function () {};")
        names = [c.name for c in code.iter_code_objects()]
        assert set(names) >= {"<toplevel>", "a", "b", "<anonymous>"}

    def test_decl_key_stability(self):
        source = "function f() {}"
        a = compile_source(source, "k.jsl")
        b = compile_source(source, "k.jsl")
        fa = next(c for c in a.iter_code_objects() if c.name == "f")
        fb = next(c for c in b.iter_code_objects() if c.name == "f")
        assert fa.decl_key == fb.decl_key

    def test_break_outside_loop_rejected(self):
        with pytest.raises(JSLCompileError):
            compile_source("break;")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(JSLCompileError):
            compile_source("continue;")

    def test_jump_targets_in_range(self):
        source = """
        for (var i = 0; i < 3; i++) { if (i === 1) continue; if (i === 2) break; }
        while (x) { y; }
        do { z; } while (w);
        switch (v) { case 1: break; default: ; }
        """
        code = compile_source(source)
        jump_ops = {
            Op.JUMP,
            Op.JUMP_IF_FALSE,
            Op.JUMP_IF_TRUE,
            Op.JUMP_IF_FALSE_KEEP,
            Op.JUMP_IF_TRUE_KEEP,
            Op.SETUP_TRY,
            Op.FOR_IN_NEXT,
        }
        for op, a, _ in code.instructions:
            if Op(op) in jump_ops:
                assert 0 <= a <= len(code.instructions)


class TestDisassembler:
    def test_mentions_names_and_constants(self):
        code = compile_source("var o = {}; o.x = 42; console.log(o.x);", "d.jsl")
        text = disassemble(code)
        assert "SET_PROP name='x'" in text
        assert "42" in text
        assert "LOAD_GLOBAL name='console'" in text

    def test_recursive_disassembly_includes_nested(self):
        code = compile_source("function f() { return 1; }")
        text = disassemble(code, recursive=True)
        assert "=== f " in text

    def test_every_opcode_renders(self):
        source = """
        var o = {a: [1]};
        function f(x) { return x; }
        try { throw 1; } catch (e) {}
        for (var k in o) { delete o[k]; }
        o.a[0] += new f(1) instanceof f ? 1 : 2;
        var s = typeof missing;
        !o; -1; o && o; o || o;
        do { break; } while (true);
        switch (1) { default: ; }
        """
        code = compile_source(source)
        for nested in code.iter_code_objects():
            assert disassemble(nested)  # must not raise


class TestCodeCache:
    def test_miss_then_hit(self, tmp_path):
        cache = CodeCache(cache_dir=tmp_path)
        assert cache.lookup("a.jsl", "var x = 1;") is None
        code = compile_source("var x = 1;", "a.jsl")
        cache.store("a.jsl", "var x = 1;", code)
        assert cache.lookup("a.jsl", "var x = 1;") is code
        assert cache.misses == 1 and cache.hits == 1

    def test_source_change_invalidates(self, tmp_path):
        cache = CodeCache(cache_dir=tmp_path)
        cache.store("a.jsl", "var x = 1;", compile_source("var x = 1;", "a.jsl"))
        assert cache.lookup("a.jsl", "var x = 2;") is None

    def test_disk_round_trip(self, tmp_path):
        source = "function f(o) { return o.v; } var r = f({v: 3});"
        first = CodeCache(cache_dir=tmp_path)
        code = compile_source(source, "lib.jsl")
        first.store("lib.jsl", source, code)
        second = CodeCache(cache_dir=tmp_path)  # fresh process, same dir
        loaded = second.lookup("lib.jsl", source)
        assert loaded is not None
        assert loaded.instructions == code.instructions
        assert [s.site_key for s in loaded.feedback_slots] == [
            s.site_key for s in code.feedback_slots
        ]

    def test_corrupt_disk_entry_ignored(self, tmp_path):
        source = "var x = 1;"
        cache = CodeCache(cache_dir=tmp_path)
        cache.store("a.jsl", source, compile_source(source, "a.jsl"))
        for path in tmp_path.glob("*.json"):
            path.write_text("{ not json")
        fresh = CodeCache(cache_dir=tmp_path)
        assert fresh.lookup("a.jsl", source) is None

    def test_json_round_trip_nested_functions(self):
        source = """
        function outer(a) {
          var captured = a * 2;
          return function inner(b) { return captured + b; };
        }
        """
        code = compile_source(source, "n.jsl")
        restored = code_from_json(json.loads(json.dumps(code_to_json(code))))
        originals = list(code.iter_code_objects())
        restoreds = list(restored.iter_code_objects())
        assert len(originals) == len(restoreds)
        for a, b in zip(originals, restoreds):
            assert a.instructions == b.instructions
            assert a.names == b.names
            assert a.local_names == b.local_names
            assert a.decl_key == b.decl_key

    def test_cached_code_executes_identically(self, tmp_path):
        from repro.core.engine import Engine

        source = "function f(o) { return o.v * 2; } console.log(f({v: 21}));"
        engine_a = Engine(seed=1, cache_dir=str(tmp_path))
        out_a = engine_a.run([("s.jsl", source)], name="a").console_output
        engine_b = Engine(seed=2, cache_dir=str(tmp_path))
        out_b = engine_b.run([("s.jsl", source)], name="b").console_output
        assert out_a == out_b == ["42"]
        assert engine_b.code_cache.hits == 1

    def test_source_hash_stable(self):
        assert source_hash("abc") == source_hash("abc")
        assert source_hash("abc") != source_hash("abd")
