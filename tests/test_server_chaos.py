"""Multi-process chaos tests for the record-cache daemon (ISSUE satellite 3).

Everything in :mod:`tests.test_server` is single-process: the daemon runs
on a background thread of the test interpreter.  These tests instead use
**real processes** — ``ric-serve`` spawned as a subprocess, clients
spawned as subprocesses of their own (``tests/_chaos_client.py``) — so
they cover what threads cannot:

* records extracted by one *process* averting misses in another;
* N clients warming disjoint workloads concurrently against one daemon;
* SIGKILLing the daemon mid-sequence, which severs live connections at
  the kernel (a threaded ``daemon.stop()`` leaves in-flight handler
  threads serving — see ``test_server.py``).

The contract under chaos is the PR 1 degradation ladder extended to the
transport: program output never diverges from a cold run, nothing
raises, and the damage is visible only in ``ric_remote_*`` counters.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.server.client import RemoteRecordStore

ROOT = Path(__file__).resolve().parent.parent
CLIENT = ROOT / "tests" / "_chaos_client.py"

pytestmark = [
    pytest.mark.net,
    pytest.mark.skipif(
        not hasattr(__import__("socket"), "AF_UNIX"),
        reason="unix domain sockets unavailable",
    ),
]


def _env() -> dict:
    import os

    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def _wait_for_daemon(socket_path: str, proc, timeout_s: float = 15.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            pytest.fail(f"daemon exited early (rc={proc.returncode}): {out}")
        probe = RemoteRecordStore(socket_path, timeout_s=1.0, retry_after_s=0.0)
        try:
            if probe.ping():
                return
        finally:
            probe.close()
        time.sleep(0.05)
    pytest.fail(f"daemon never came up on {socket_path}")


@pytest.fixture
def daemon(tmp_path):
    """A real ``ric-serve`` subprocess with a disk-backed store."""
    socket_path = str(tmp_path / "ricd.sock")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.harness.serve_cli",
            "--socket",
            socket_path,
            "--dir",
            str(tmp_path / "records"),
        ],
        cwd=str(ROOT),
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    _wait_for_daemon(socket_path, proc)
    yield proc, socket_path
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10)
    if proc.stdout:
        proc.stdout.close()


def _client_args(mode: str, socket_path: str, index: int, seed: int) -> list:
    return [
        sys.executable,
        str(CLIENT),
        mode,
        socket_path,
        str(index),
        str(seed),
    ]


def _run_client(mode: str, socket_path: str, index: int, seed: int) -> dict:
    proc = subprocess.run(
        _client_args(mode, socket_path, index, seed),
        cwd=str(ROOT),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, (
        f"{mode} client {index} failed (rc={proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _assert_reuse_blob(blob: dict, who: str) -> None:
    """The ISSUE acceptance triple: misses averted, remote hits, and
    byte-identical program output versus the in-process cold run."""
    assert blob["misses_averted"] > 0, who
    assert blob["ric_remote_hits"] > 0, who
    assert blob["ic_misses"] < blob["cold_ic_misses"], who
    assert blob["output"] == blob["cold_output"], who
    assert blob["mode"] == "reuse-ric", who


class TestCrossProcessSharing:
    def test_two_process_demo(self, daemon):
        """The §9 story as real processes: A extracts, B reuses.

        This is the default-on smoke slice of the chaos suite — one warm
        client, one reuse client, nothing concurrent.
        """
        _, socket_path = daemon
        warm = _run_client("warm", socket_path, index=0, seed=11)
        assert warm["published"] > 0
        assert warm["mode"] == "initial"

        reuse = _run_client("reuse", socket_path, index=0, seed=22)
        _assert_reuse_blob(reuse, "reuse client 0")

    @pytest.mark.slow
    def test_every_client_reuses_another_processes_records(self, daemon):
        """N clients warm disjoint workloads concurrently; then each
        client reuse-runs a workload warmed by a *different* process, so
        every averted miss is cross-process by construction."""
        _, socket_path = daemon
        n = 3

        warmers = [
            subprocess.Popen(
                _client_args("warm", socket_path, index, seed=100 + index),
                cwd=str(ROOT),
                env=_env(),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for index in range(n)
        ]
        for index, proc in enumerate(warmers):
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, f"warm client {index}: {out}\n{err}"
            blob = json.loads(out.strip().splitlines()[-1])
            assert blob["published"] > 0, f"warm client {index}"

        # Workload i's records were published only by warm client i, so
        # reuse client i picking workload (i + 1) % n never sees its own.
        reusers = [
            subprocess.Popen(
                _client_args(
                    "reuse", socket_path, (index + 1) % n, seed=200 + index
                ),
                cwd=str(ROOT),
                env=_env(),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for index in range(n)
        ]
        for index, proc in enumerate(reusers):
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, f"reuse client {index}: {out}\n{err}"
            blob = json.loads(out.strip().splitlines()[-1])
            _assert_reuse_blob(blob, f"reuse client {index}")


class TestDaemonDeath:
    @pytest.mark.slow
    def test_sigkill_mid_sequence_degrades_cleanly(self, daemon):
        """SIGKILL the daemon between two reuse runs of one client.

        The client must exit 0 (never an exception), the post-kill run's
        output must stay identical to cold and to the pre-kill run, and
        the only trace is ``ric_remote_fallbacks > 0``."""
        daemon_proc, socket_path = daemon
        client = subprocess.Popen(
            _client_args("kill", socket_path, index=0, seed=7),
            cwd=str(ROOT),
            env=_env(),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = client.stdout.readline()
            assert line.strip() == "READY", line

            daemon_proc.kill()
            daemon_proc.wait(timeout=10)

            client.stdin.write("go\n")
            client.stdin.flush()
            out, err = client.communicate(timeout=120)
        finally:
            if client.poll() is None:
                client.kill()
                client.wait(timeout=10)
        assert client.returncode == 0, f"client died: {out}\n{err}"

        blob = json.loads(out.strip().splitlines()[-1])
        alive, dead = blob["alive"], blob["dead"]

        _assert_reuse_blob(alive, "pre-kill run")
        assert alive["ric_remote_fallbacks"] == 0

        # Degraded, not broken: the write-back fallback store still
        # preloads the records, output never diverges, and the daemon's
        # absence shows up only in the fallback counter.
        assert dead["ric_remote_fallbacks"] > 0
        assert dead["ric_remote_hits"] == 0
        assert dead["misses_averted"] > 0
        assert dead["output"] == dead["cold_output"]
        assert dead["output"] == alive["output"]
        assert dead["mode"] == "reuse-ric"
