"""Round-trip and corruption-fuzz tests for the ICRecord wire format.

Invariant under fuzz: loading mutated serialized data either succeeds
(and the result passes structural validation) or raises exactly
:class:`RecordFormatError` — never ``KeyError``/``TypeError``/
``IndexError``/anything else.  That single-exception-type contract is
what lets every caller harden itself with one ``except`` clause.
"""

import copy
import json
import random

import pytest

from repro.core.engine import Engine
from repro.ric import (
    CorruptRecord,
    RecordFormatError,
    load_icrecord,
    payload_checksum,
    record_from_envelope,
    record_from_json,
    record_to_envelope,
    record_to_json,
    save_icrecord,
    try_load_icrecord,
    validate_record,
)

SOURCE = """
function Box(v) { this.v = v; this.tag = "box"; }
var total = 0;
for (var i = 0; i < 12; i = i + 1) {
  var b = new Box(i);
  b.extra = i * 2;
  total = total + b.v + b.extra;
}
console.log(total);
"""


@pytest.fixture(scope="module")
def record():
    engine = Engine(seed=41)
    engine.run([("box.jsl", SOURCE)], name="initial")
    return engine.extract_icrecord()


class TestRoundTrip:
    def test_json_round_trip_preserves_stats(self, record):
        clone = record_from_json(record_to_json(record))
        assert clone.stats() == record.stats()
        assert validate_record(clone) == []

    def test_envelope_round_trip(self, record):
        clone = record_from_envelope(record_to_envelope(record))
        assert clone.stats() == record.stats()

    def test_disk_round_trip(self, record, tmp_path):
        path = tmp_path / "r.icrecord.json"
        save_icrecord(record, path)
        assert load_icrecord(path).stats() == record.stats()

    def test_checksum_is_canonical(self, record):
        payload = record_to_json(record)
        shuffled = json.loads(json.dumps(payload))
        assert payload_checksum(payload) == payload_checksum(shuffled)

    def test_extracted_record_validates(self, record):
        assert validate_record(record) == []


def _mutate(node, rng: random.Random, depth: int = 0):
    """Apply one random structural mutation somewhere in a JSON tree."""
    replacements = [None, "x", 12345, -7, [], {}, True, 3.5]
    if isinstance(node, dict) and node:
        key = rng.choice(sorted(node, key=str))
        action = rng.randrange(3)
        if action == 0:
            del node[key]
        elif action == 1:
            node[key] = rng.choice(replacements)
        else:
            _mutate(node[key], rng, depth + 1)
    elif isinstance(node, list) and node:
        index = rng.randrange(len(node))
        if rng.randrange(2):
            node[index] = rng.choice(replacements)
        else:
            _mutate(node[index], rng, depth + 1)


class TestCorruptionFuzz:
    """Mutate serialized records hundreds of ways; the loader must
    succeed or raise RecordFormatError, nothing else."""

    def test_payload_mutations_raise_only_record_format_error(self, record):
        pristine = record_to_json(record)
        for seed in range(300):
            rng = random.Random(seed)
            payload = copy.deepcopy(pristine)
            for _ in range(rng.randrange(1, 4)):
                _mutate(payload, rng)
            try:
                loaded = record_from_json(payload)
            except RecordFormatError:
                continue
            # record_from_json alone does not structurally validate; the
            # contract here is the exception type.  validate_record must
            # itself never raise on whatever parsed.
            validate_record(loaded)

    def test_envelope_mutations_raise_only_record_format_error(self, record):
        pristine = record_to_envelope(record)
        for seed in range(300):
            rng = random.Random(seed)
            envelope = copy.deepcopy(pristine)
            for _ in range(rng.randrange(1, 4)):
                _mutate(envelope, rng)
            try:
                loaded = record_from_envelope(envelope)
            except RecordFormatError:
                continue
            # Survivors must be fully trustworthy.
            assert validate_record(loaded) == []

    def test_rechecksummed_mutations_still_gated(self, record):
        """Even with a *correct* checksum, structural damage is refused —
        the validation layer, not the checksum, is the last line."""
        pristine = record_to_json(record)
        admitted = 0
        for seed in range(200):
            rng = random.Random(10_000 + seed)
            payload = copy.deepcopy(pristine)
            _mutate(payload, rng)
            envelope = {"checksum": payload_checksum(payload), "record": payload}
            try:
                loaded = record_from_envelope(envelope)
            except RecordFormatError:
                continue
            admitted += 1
            assert validate_record(loaded) == []
        # Most single mutations must be caught, not admitted.
        assert admitted < 100

    def test_text_level_damage_on_disk(self, record, tmp_path):
        path = tmp_path / "r.icrecord.json"
        save_icrecord(record, path)
        pristine = path.read_bytes()
        for seed in range(100):
            rng = random.Random(seed)
            damaged = bytearray(pristine)
            for _ in range(rng.randrange(1, 6)):
                damaged[rng.randrange(len(damaged))] = rng.randrange(256)
            path.write_bytes(bytes(damaged))
            try:
                loaded = load_icrecord(path)
            except RecordFormatError:
                continue
            # A mutation that kept bytes identical can legitimately load.
            assert validate_record(loaded) == []

    def test_missing_dependents_key_is_typed(self, record):
        """The satellite repro: an hcvt row missing 'dependents' must be a
        RecordFormatError, not a KeyError."""
        payload = record_to_json(record)
        assert payload["hcvt"], "fixture record should have rows"
        del payload["hcvt"][0]["dependents"]
        with pytest.raises(RecordFormatError):
            record_from_json(payload)

    def test_non_dict_payloads(self):
        for bogus in (None, [], "record", 7, True):
            with pytest.raises(RecordFormatError):
                record_from_json(bogus)
            with pytest.raises(RecordFormatError):
                record_from_envelope(bogus)

    def test_try_load_never_raises(self, record, tmp_path):
        path = tmp_path / "r.icrecord.json"
        save_icrecord(record, path)
        pristine = path.read_bytes()
        outcomes = {"ok": 0, "corrupt": 0}
        for seed in range(100):
            rng = random.Random(seed)
            damaged = bytearray(pristine)
            for _ in range(rng.randrange(1, 8)):
                damaged[rng.randrange(len(damaged))] = rng.randrange(256)
            path.write_bytes(bytes(damaged))
            result = try_load_icrecord(path)
            outcomes["corrupt" if isinstance(result, CorruptRecord) else "ok"] += 1
        assert outcomes["corrupt"] > 0  # fuzz actually bites

    def test_missing_file_is_oserror_not_format_error(self, tmp_path):
        with pytest.raises(OSError):
            load_icrecord(tmp_path / "absent.icrecord.json")
        assert isinstance(
            try_load_icrecord(tmp_path / "absent.icrecord.json"), CorruptRecord
        )
