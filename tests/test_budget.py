"""Execution governance: budgets, cancellation, and the chaos suite.

The contract under test (INTERNALS §10): a governed run of *any*
runaway program terminates with the right typed abort, bumps exactly
the matching ``budget_aborts_*`` counter, attaches the partial profile,
and leaves the engine fully usable.  Governance must also be invisible
when idle: counter accounting of a governed run is bit-identical to an
ungoverned one, and guest code can never catch a host abort.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.budget import (
    DEFAULT_CHECK_STRIDE,
    BudgetMeter,
    CancelToken,
    ExecutionBudget,
)
from repro.core.config import RICConfig
from repro.core.engine import Engine
from repro.core.errors import (
    ABORT_CLASSES,
    BudgetExceeded,
    Cancelled,
    DeadlineExceeded,
    ExecutionAborted,
    StepBudgetExceeded,
)
from repro.faults.budget_faults import BUDGET_FAULTS, runaway_loop
from repro.lang.errors import JSLError
from repro.ric.validate import validate_record
from repro.runtime.heap import Heap


class TestExecutionBudget:
    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            ExecutionBudget(max_steps=0)
        with pytest.raises(ValueError):
            ExecutionBudget(max_heap_bytes=-1)
        with pytest.raises(ValueError):
            ExecutionBudget(deadline_ms=0.0)
        with pytest.raises(ValueError):
            ExecutionBudget(check_stride=0)

    def test_unlimited(self):
        assert ExecutionBudget().is_unlimited
        assert not ExecutionBudget(max_steps=10).is_unlimited

    def test_config_round_trip(self):
        assert RICConfig().execution_budget() is None
        budget = RICConfig(max_steps=5, budget_check_stride=7).execution_budget()
        assert budget.max_steps == 5 and budget.check_stride == 7
        assert RICConfig(deadline_ms=1.0).execution_budget().check_stride == (
            DEFAULT_CHECK_STRIDE
        )


class TestCancelToken:
    def test_first_reason_wins(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel("operator")
        token.cancel("too late")
        assert token.cancelled and token.reason == "operator"
        with pytest.raises(Cancelled, match="operator"):
            token.raise_if_cancelled()


class TestBudgetMeter:
    def test_step_accounting_is_amortized(self):
        meter = BudgetMeter(ExecutionBudget(max_steps=100), None, Heap())
        meter.note_steps(100)  # exactly at the limit: fine
        with pytest.raises(StepBudgetExceeded):
            meter.note_steps(1)

    def test_quiet_credit_never_raises(self):
        meter = BudgetMeter(ExecutionBudget(max_steps=1), None, Heap())
        meter.note_steps_quiet(10_000)
        assert meter.steps_used == 10_000

    def test_deadline_uses_injected_clock(self):
        now = [0.0]
        meter = BudgetMeter(
            ExecutionBudget(deadline_ms=50.0), None, Heap(), clock=lambda: now[0]
        )
        meter.check()
        now[0] = 0.051
        with pytest.raises(DeadlineExceeded):
            meter.check()

    def test_cancellation_beats_budgets(self):
        token = CancelToken()
        token.cancel()
        meter = BudgetMeter(ExecutionBudget(max_steps=1), token, Heap())
        meter.note_steps_quiet(10)
        with pytest.raises(Cancelled):
            meter.check()


class TestChaosSuite:
    """Every runaway class × every governance dimension (BUDGET_FAULTS)."""

    @pytest.mark.parametrize(
        "fault", BUDGET_FAULTS, ids=lambda fault: fault.name
    )
    def test_runaway_terminates_with_typed_abort(self, fault):
        engine = Engine(seed=11)
        with pytest.raises(fault.expected) as excinfo:
            engine.run(
                [("runaway.jsl", fault.source())],
                name=fault.name,
                budget=ExecutionBudget(**fault.budget_kwargs),
            )
        error = excinfo.value
        assert type(error) is fault.expected
        # Exactly the matching counter, exactly once, on the partial profile.
        assert error.profile is not None
        counters = error.profile.counters
        assert getattr(counters, fault.counter) == 1
        assert counters.budget_aborts_total == 1
        assert error.profile.mode.endswith("-aborted")
        # The engine survives: an ungoverned run right after is normal.
        after = engine.run([("after.jsl", "console.log('alive');")], name="after")
        assert after.console_output == ["alive"]
        assert after.counters.budget_aborts_total == 0

    def test_abort_reasons_cover_the_taxonomy(self):
        reasons = {fault.expected.reason for fault in BUDGET_FAULTS}
        assert reasons == {"steps", "heap", "depth", "deadline"}
        assert set(ABORT_CLASSES) == reasons | {"cancelled"}

    def test_guest_catch_cannot_swallow_abort(self):
        source = (
            "var i = 0;\n"
            "while (true) { try { i = i + 1; } catch (e) { i = 0; } }\n"
        )
        engine = Engine(seed=11)
        with pytest.raises(StepBudgetExceeded):
            engine.run(
                [("sneaky.jsl", source)],
                name="sneaky",
                budget=ExecutionBudget(max_steps=20_000, check_stride=256),
            )

    def test_aborts_are_not_guest_errors(self):
        for cls in ABORT_CLASSES.values():
            assert not issubclass(cls, JSLError)
        assert issubclass(StepBudgetExceeded, BudgetExceeded)
        assert issubclass(BudgetExceeded, ExecutionAborted)
        assert not issubclass(Cancelled, BudgetExceeded)


class TestCancellation:
    def test_cross_thread_cancel_stops_the_run(self):
        engine = Engine(seed=11)
        token = CancelToken()
        timer = threading.Timer(0.05, token.cancel, args=("test says stop",))
        timer.start()
        try:
            with pytest.raises(Cancelled, match="test says stop") as excinfo:
                engine.run(
                    [("spin.jsl", runaway_loop())],
                    name="spin",
                    budget=ExecutionBudget(check_stride=512),
                    cancel_token=token,
                )
        finally:
            timer.cancel()
        assert excinfo.value.profile.counters.budget_aborts_cancelled == 1

    def test_token_without_budget_still_governs(self):
        engine = Engine(seed=11)
        token = CancelToken()
        token.cancel()
        with pytest.raises(Cancelled):
            engine.run(
                [("spin.jsl", runaway_loop())], name="spin", cancel_token=token
            )


class TestGovernanceTransparency:
    """Governance that isn't aborting must be observationally free."""

    SOURCE = (
        "function Point(x, y) { this.x = x; this.y = y; }\n"
        "var total = 0;\n"
        "var i = 0;\n"
        "while (i < 4000) {\n"
        "  var p = new Point(i, i + 1);\n"
        "  total = total + p.x + p.y;\n"
        "  i = i + 1;\n"
        "}\n"
        "console.log(total);\n"
    )

    def test_counters_identical_governed_vs_ungoverned(self):
        plain = Engine(seed=5).run([("w.jsl", self.SOURCE)], name="w")
        governed = Engine(seed=5).run(
            [("w.jsl", self.SOURCE)],
            name="w",
            budget=ExecutionBudget(max_steps=10**9, check_stride=64),
        )
        assert governed.console_output == plain.console_output
        for key, value in plain.counters.as_dict().items():
            assert governed.counters.as_dict()[key] == value, key

    def test_stride_does_not_change_counters(self):
        baseline = None
        for stride in (1, 7, 2048):
            profile = Engine(seed=5).run(
                [("w.jsl", self.SOURCE)],
                name="w",
                budget=ExecutionBudget(max_steps=10**9, check_stride=stride),
            )
            blob = profile.counters.as_dict()
            if baseline is None:
                baseline = blob
            else:
                assert blob == baseline


class TestPartialExtraction:
    """An aborted warmup still yields a valid, reusable (partial) record."""

    WARMUP = (
        "function Box(v) { this.v = v; }\n"
        "var i = 0;\n"
        "var sum = 0;\n"
        "while (i < 3000) { sum = sum + new Box(i).v; i = i + 1; }\n"
        "console.log(sum);\n"
        "while (true) { i = i + 1; }\n"  # the runaway tail
    )

    def test_aborted_warmup_record_is_valid_and_preloads(self):
        engine = Engine(seed=9)
        with pytest.raises(StepBudgetExceeded):
            engine.run(
                [("warm.jsl", self.WARMUP)],
                name="warmup",
                budget=ExecutionBudget(max_steps=200_000, check_stride=256),
            )
        record = engine.extract_icrecord()
        assert validate_record(record) == []

    def test_config_default_budget_governs_runs(self):
        engine = Engine(config=RICConfig(max_steps=10_000), seed=9)
        with pytest.raises(StepBudgetExceeded):
            engine.run([("spin.jsl", runaway_loop())], name="spin")
        # An explicit budget on the call wins over the config default.
        profile = engine.run(
            [("ok.jsl", "console.log('x');")],
            name="ok",
            budget=ExecutionBudget(max_steps=10**9),
        )
        assert profile.console_output == ["x"]


class TestRunCliGovernance:
    def test_budget_abort_exit_code_and_partial_output(self, tmp_path, capsys):
        from repro.harness.run_cli import EXIT_BUDGET, main

        script = tmp_path / "loop.jsl"
        script.write_text("console.log('start');\n" + runaway_loop())
        assert main(["--max-steps", "50000", str(script)]) == EXIT_BUDGET
        captured = capsys.readouterr()
        assert "start" in captured.out  # partial runs are real runs
        assert "aborted (steps)" in captured.err

    def test_deadline_flag(self, tmp_path, capsys):
        from repro.harness.run_cli import EXIT_BUDGET, main

        script = tmp_path / "loop.jsl"
        script.write_text(runaway_loop())
        assert main(["--deadline-ms", "60", str(script)]) == EXIT_BUDGET

    def test_depth_flag(self, tmp_path, capsys):
        from repro.faults.budget_faults import deep_recursion
        from repro.harness.run_cli import EXIT_BUDGET, main

        script = tmp_path / "dive.jsl"
        script.write_text(deep_recursion())
        assert main(["--max-depth", "64", str(script)]) == EXIT_BUDGET

    def test_bad_budget_flag_is_usage_error(self, tmp_path, capsys):
        from repro.harness.run_cli import EXIT_USAGE, main

        script = tmp_path / "ok.jsl"
        script.write_text("console.log('x');")
        assert main(["--max-steps", "0", str(script)]) == EXIT_USAGE

    def test_stats_report_budget_aborts(self, tmp_path, capsys):
        from repro.harness.run_cli import main

        script = tmp_path / "ok.jsl"
        script.write_text("console.log('x');")
        assert main(["--stats", "--max-steps", "1000000", str(script)]) == 0
        assert "budget aborts" in capsys.readouterr().err
