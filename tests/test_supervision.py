"""Supervised, drainable ricd: health, graceful drain, crash restart.

The operational contract (INTERNALS §10):

* ``STAT`` exposes health/readiness so a supervisor can tell "alive"
  from "shutting down" without guessing from traffic;
* SIGTERM drains: in-flight requests finish and get their responses,
  the write-through store is durable, exit code is 0;
* the supervisor restarts a crashed daemon with jittered exponential
  backoff and gives up on a restart storm instead of busy-looping.

Supervisor logic is tested against injected fakes (no processes, no
sleeping); the drain path against a real in-process daemon; and the
end-to-end signal behavior against real ``ric-serve`` subprocesses
(marked ``slow``/``net``).
"""

from __future__ import annotations

import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.engine import Engine
from repro.server import protocol
from repro.server.client import RemoteRecordStore
from repro.server.daemon import RecordCacheDaemon
from repro.server.supervisor import (
    EXIT_CLEAN,
    EXIT_STOPPED,
    EXIT_STORM,
    Supervisor,
)

ROOT = Path(__file__).resolve().parent.parent

pytestmark = [
    pytest.mark.net,
    pytest.mark.skipif(
        not hasattr(socket, "AF_UNIX"), reason="unix sockets required"
    ),
]

LIB_SOURCE = """
function Pair(a, b) { this.a = a; this.b = b; }
var total = 0;
for (var i = 0; i < 20; i = i + 1) { total = total + new Pair(i, i).a; }
console.log("total:", total);
"""


@pytest.fixture
def daemon(tmp_path):
    ricd = RecordCacheDaemon(
        tmp_path / "ricd.sock", directory=tmp_path / "records"
    )
    ricd.start()
    yield ricd
    ricd.stop()


def _extracted_record():
    engine = Engine(seed=31)
    engine.run([("lib.jsl", LIB_SOURCE)], name="initial")
    return engine.extract_per_script_records()["lib.jsl"]


class TestHealth:
    def test_stat_reports_health(self, daemon):
        store = RemoteRecordStore(daemon.socket_path)
        response = store._request(protocol.request("STAT"))
        health = response["health"]
        assert health["ready"] is True and health["draining"] is False
        assert health["uptime_s"] > 0
        # The STAT request itself is the one in flight.
        assert health["inflight"] == 1
        pressure = health["pressure"]
        assert pressure["records"] == 0 and pressure["records_frac"] == 0.0
        assert 0.0 <= pressure["bytes_frac"] <= 1.0
        store.close()

    def test_pressure_tracks_occupancy(self, daemon):
        store = RemoteRecordStore(daemon.socket_path)
        store.put("lib.jsl", LIB_SOURCE, _extracted_record())
        health = store._request(protocol.request("STAT"))["health"]
        assert health["pressure"]["records"] == 1
        assert health["pressure"]["bytes"] > 0
        store.close()

    def test_drained_daemon_reports_not_ready(self, daemon):
        assert daemon.health()["ready"] is True
        assert daemon.drain(timeout_s=2.0) is True
        blob = daemon.health()
        assert blob["ready"] is False and blob["draining"] is True


class TestDrain:
    def test_idle_drain_is_clean(self, daemon):
        assert daemon.drain(timeout_s=2.0) is True
        assert not daemon.socket_path.exists()

    def test_drain_finishes_inflight_put(self, daemon, monkeypatch):
        """A PUT in flight when the drain starts still gets its response,
        and the record is durable in the write-through store."""
        record = _extracted_record()
        entered = threading.Event()
        original = daemon.store.put_by_key

        def slow_put(key, rec):
            entered.set()
            time.sleep(0.3)  # hold the request in flight across the drain
            original(key, rec)

        monkeypatch.setattr(daemon.store, "put_by_key", slow_put)
        store = RemoteRecordStore(daemon.socket_path, timeout_s=5.0)
        result: dict = {}

        def do_put():
            store.put("lib.jsl", LIB_SOURCE, record)
            result["stats"] = store.stats_snapshot()

        putter = threading.Thread(target=do_put)
        putter.start()
        assert entered.wait(2.0), "PUT never reached the store"
        assert daemon.drain(timeout_s=5.0) is True
        putter.join(timeout=5.0)
        assert not putter.is_alive()
        # The in-flight PUT was answered, not cut.
        assert result["stats"]["puts"] == 1
        assert result["stats"]["fallbacks"] == 0
        # And it is durable: a fresh store over the same directory has it.
        from repro.ric.store import RecordStore

        reloaded = RecordStore(directory=daemon.store._directory)
        assert reloaded.get("lib.jsl", LIB_SOURCE) is not None
        store.close()

    def test_drain_deadline_cuts_stragglers(self, daemon, monkeypatch):
        entered = threading.Event()
        release = threading.Event()

        def stuck_put(key, rec):
            entered.set()
            release.wait(10.0)

        monkeypatch.setattr(daemon.store, "put_by_key", stuck_put)
        store = RemoteRecordStore(daemon.socket_path, timeout_s=15.0)
        record = _extracted_record()
        putter = threading.Thread(
            target=lambda: store.put("lib.jsl", LIB_SOURCE, record)
        )
        putter.start()
        assert entered.wait(2.0)
        assert daemon.drain(timeout_s=0.2) is False
        release.set()
        putter.join(timeout=5.0)
        store.close()

    def test_draining_daemon_rejects_new_work(self, daemon):
        store = RemoteRecordStore(daemon.socket_path)
        assert store.ping()
        daemon.drain(timeout_s=2.0)
        fresh = RemoteRecordStore(daemon.socket_path)
        assert fresh.ping() is False
        fresh.close()
        store.close()


class _FakeChild:
    """Popen-shaped test double: scripted exit code, optional callback."""

    def __init__(self, code, on_wait=None):
        self.code = code
        self.on_wait = on_wait
        self.terminated = False

    def wait(self):
        if self.on_wait is not None:
            self.on_wait()
        return self.code

    def terminate(self):
        self.terminated = True

    def kill(self):  # pragma: no cover - parity with Popen
        self.terminated = True


class TestSupervisor:
    def _supervisor(self, codes, clock=None, **kwargs):
        spawned = []

        def spawn(command):
            child = _FakeChild(codes.pop(0))
            spawned.append(child)
            return child

        sleeps: list[float] = []
        sup = Supervisor(
            ["ricd"],
            spawn=spawn,
            sleep=sleeps.append,
            clock=clock if clock is not None else lambda: 0.0,
            rng=random.Random(0),
            **kwargs,
        )
        return sup, sleeps, spawned

    def test_clean_exit_ends_supervision(self):
        sup, sleeps, spawned = self._supervisor([0])
        assert sup.run() == EXIT_CLEAN
        assert sup.restarts == 0 and sleeps == []

    def test_crashes_restart_until_clean(self):
        sup, sleeps, spawned = self._supervisor([1, 1, 0])
        assert sup.run() == EXIT_CLEAN
        assert sup.restarts == 2 and len(spawned) == 3

    def test_backoff_doubles_and_caps(self):
        sup, sleeps, _ = self._supervisor(
            [1] * 8 + [0],
            backoff_base_s=1.0,
            backoff_cap_s=4.0,
            jitter_frac=0.0,
            storm_threshold=100,
        )
        assert sup.run() == EXIT_CLEAN
        assert sleeps == [1.0, 2.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0]

    def test_jitter_stays_in_band(self):
        sup, sleeps, _ = self._supervisor(
            [1] * 5 + [0],
            backoff_base_s=1.0,
            backoff_cap_s=1.0,
            jitter_frac=0.5,
            storm_threshold=100,
        )
        sup.run()
        assert all(1.0 <= pause <= 1.5 for pause in sleeps)

    def test_healthy_runtime_resets_backoff(self):
        now = [0.0]

        def clock():
            return now[0]

        codes = [1, 1, 1, 0]
        sleeps: list[float] = []

        def spawn(command):
            code = codes.pop(0)
            if len(codes) == 1:
                # Third child: runs "healthily" for 100s before dying.
                return _FakeChild(code, on_wait=lambda: now.__setitem__(0, now[0] + 100.0))
            return _FakeChild(code)

        sup = Supervisor(
            ["ricd"],
            spawn=spawn,
            sleep=sleeps.append,
            clock=clock,
            rng=random.Random(0),
            backoff_base_s=1.0,
            jitter_frac=0.0,
            healthy_after_s=5.0,
            storm_window_s=10.0,
            storm_threshold=100,
        )
        assert sup.run() == EXIT_CLEAN
        # Crash 1: 1s.  Crash 2: 2s.  Crash 3 after a healthy 100s run:
        # the ladder reset, so back to 1s.
        assert sleeps == [1.0, 2.0, 1.0]

    def test_restart_storm_trips_breaker(self):
        sup, sleeps, _ = self._supervisor(
            [1] * 50, storm_window_s=30.0, storm_threshold=3
        )
        assert sup.run() == EXIT_STORM
        assert len(sleeps) == 3  # threshold restarts, then gave up

    def test_crashes_outside_window_do_not_storm(self):
        now = [0.0]

        def spawn(command):
            # Every child "runs" for 100s: crashes never cluster.
            return _FakeChild(1, on_wait=lambda: now.__setitem__(0, now[0] + 100.0))

        stop_after = [6]

        def sleep(pause):
            stop_after[0] -= 1
            if stop_after[0] == 0:
                sup.request_stop()

        sup = Supervisor(
            ["ricd"],
            spawn=spawn,
            sleep=sleep,
            clock=lambda: now[0],
            rng=random.Random(0),
            storm_window_s=30.0,
            storm_threshold=2,
        )
        assert sup.run() == EXIT_STOPPED
        assert sup.restarts == 6

    def test_request_stop_terminates_child(self):
        sup_box = {}

        def spawn(command):
            child = _FakeChild(1, on_wait=lambda: sup_box["sup"].request_stop())
            sup_box["child"] = child
            return child

        sup = Supervisor(
            ["ricd"], spawn=spawn, sleep=lambda s: None, clock=lambda: 0.0
        )
        sup_box["sup"] = sup
        assert sup.run() == EXIT_STOPPED
        assert sup_box["child"].terminated


def _env() -> dict:
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def _spawn_serve(tmp_path, *extra) -> "tuple[subprocess.Popen, str]":
    socket_path = str(tmp_path / "ricd.sock")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.harness.serve_cli",
            "--socket",
            socket_path,
            "--dir",
            str(tmp_path / "records"),
            *extra,
        ],
        cwd=str(ROOT),
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc, socket_path


def _wait_for_ping(socket_path: str, proc, timeout_s: float = 15.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            pytest.fail(f"daemon exited early (rc={proc.returncode}): {out}")
        probe = RemoteRecordStore(socket_path, timeout_s=1.0, retry_after_s=0.0)
        try:
            if probe.ping():
                return
        finally:
            probe.close()
        time.sleep(0.05)
    pytest.fail(f"daemon never came up on {socket_path}")


@pytest.mark.slow
class TestServeSignals:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        proc, socket_path = _spawn_serve(tmp_path)
        try:
            _wait_for_ping(socket_path, proc)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=20) == 0
            assert "drained cleanly" in proc.stdout.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            if proc.stdout:
                proc.stdout.close()

    def test_supervise_restarts_sigkilled_daemon(self, tmp_path):
        """SIGKILL the supervised daemon; the supervisor restarts it,
        clients reconnect, and disk-backed records survive."""
        proc, socket_path = _spawn_serve(tmp_path, "--supervise")
        store = None
        try:
            _wait_for_ping(socket_path, proc)
            store = RemoteRecordStore(
                socket_path, timeout_s=2.0, retry_after_s=0.0
            )
            store.put("lib.jsl", LIB_SOURCE, _extracted_record())

            # Find and SIGKILL the *child* daemon (its pid is in STAT).
            child_pid = store._request(protocol.request("STAT"))["cache"]["pid"]
            assert child_pid != proc.pid
            os.kill(child_pid, signal.SIGKILL)

            # The supervisor restarts it; a client eventually reconnects.
            deadline = time.monotonic() + 30.0
            revived = False
            while time.monotonic() < deadline:
                probe = RemoteRecordStore(
                    socket_path, timeout_s=1.0, retry_after_s=0.0
                )
                try:
                    if probe.ping():
                        pid = probe._request(protocol.request("STAT"))[
                            "cache"
                        ]["pid"]
                        if pid != child_pid:
                            revived = True
                            break
                finally:
                    probe.close()
                time.sleep(0.1)
            assert revived, "supervisor never restarted the daemon"

            # Records written through to disk survived the kill.
            fresh = RemoteRecordStore(socket_path, timeout_s=2.0)
            assert fresh.get("lib.jsl", LIB_SOURCE) is not None
            assert fresh.stats_snapshot()["hits"] == 1
            fresh.close()
        finally:
            if store is not None:
                store.close()
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=20)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)
            if proc.stdout:
                proc.stdout.close()
