"""Reusable execution helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.bytecode.compiler import compile_source
from repro.core.engine import Engine
from repro.ic.icvector import FeedbackState
from repro.ic.miss import ICRuntime
from repro.interpreter.vm import VM
from repro.runtime.builtins import install_builtins
from repro.runtime.context import Runtime
from repro.stats.counters import Counters


class ExecutionResult:
    """Everything a test usually wants from running a jsl snippet."""

    def __init__(self, runtime, counters, feedback, vm, value):
        self.runtime = runtime
        self.counters = counters
        self.feedback = feedback
        self.vm = vm
        self.value = value

    @property
    def console(self) -> list[str]:
        return self.runtime.console_output


def run_jsl(source: str, seed: int = 42, filename: str = "test.jsl") -> ExecutionResult:
    """Compile and execute a snippet in a fresh runtime; return the state."""
    code = compile_source(source, filename)
    runtime = Runtime(seed=seed)
    counters = Counters()

    def on_created(hc):
        counters.hidden_classes_created += 1

    runtime.hidden_classes.on_created = on_created
    install_builtins(runtime)
    feedback = FeedbackState()
    feedback.register_script(code)
    ic_runtime = ICRuntime(runtime, counters)
    vm = VM(runtime, counters, ic_runtime, feedback)
    value = vm.run_code(code)
    return ExecutionResult(runtime, counters, feedback, vm, value)


class ColdReuseRuns:
    """The pair of runs every reuse-oriented test wants, plus their inputs.

    ``cold_state`` / ``reused_state`` are the canonical, address-free
    serializations of the user-visible global heap after each run
    (:func:`repro.baselines.snapshot.serialize_user_globals`) — the
    differential suite's heap-observable-state oracle.
    """

    def __init__(self, engine, record, cold, reused, cold_state, reused_state):
        self.engine = engine
        self.record = record
        self.cold = cold
        self.reused = reused
        self.cold_state = cold_state
        self.reused_state = reused_state

    @property
    def outputs_identical(self) -> bool:
        return self.cold.console_output == self.reused.console_output


def run_cold_and_reused(
    scripts,
    *,
    seed: int = 123,
    name: str = "workload",
    config=None,
    icrecord=None,
    record_from=None,
) -> ColdReuseRuns:
    """Run a workload cold and RIC-reused in one engine.

    By default the record comes from an Initial run of ``scripts`` itself
    (the paper's protocol: Initial -> extract -> cold/Conventional -> RIC).
    Pass ``record_from`` to extract it from a *different* workload
    (cross-workload reuse), or ``icrecord`` to supply one directly (e.g. a
    fault-injected record loaded from disk; the cold run is then the
    engine's first, truly cold run).
    """
    from repro.baselines.snapshot import serialize_user_globals

    engine = Engine(config=config, seed=seed)
    record = icrecord
    if record is None:
        engine.run(record_from if record_from is not None else scripts, name=name)
        record = engine.extract_icrecord()
    cold = engine.run(scripts, name=name)
    cold_state = serialize_user_globals(engine.last_run.runtime)
    reused = engine.run(scripts, name=name, icrecord=record)
    reused_state = serialize_user_globals(engine.last_run.runtime)
    return ColdReuseRuns(
        engine=engine,
        record=record,
        cold=cold,
        reused=reused,
        cold_state=cold_state,
        reused_state=reused_state,
    )


def eval_jsl(expression: str, seed: int = 42) -> object:
    """Evaluate a single jsl expression and return its guest value."""
    result = run_jsl(f"var __result = ({expression});", seed=seed)
    found, value = result.runtime.global_object.get_own("__result")
    assert found, "expression did not produce a result"
    return value


def console_of(source: str, seed: int = 42) -> list[str]:
    """Run a snippet and return its console output lines."""
    return run_jsl(source, seed=seed).console


@pytest.fixture
def engine() -> Engine:
    return Engine(seed=123)


@pytest.fixture
def fresh_runtime() -> Runtime:
    runtime = Runtime(seed=7)
    install_builtins(runtime)
    return runtime
