"""Reusable execution helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.bytecode.compiler import compile_source
from repro.core.engine import Engine
from repro.ic.icvector import FeedbackState
from repro.ic.miss import ICRuntime
from repro.interpreter.vm import VM
from repro.runtime.builtins import install_builtins
from repro.runtime.context import Runtime
from repro.stats.counters import Counters


class ExecutionResult:
    """Everything a test usually wants from running a jsl snippet."""

    def __init__(self, runtime, counters, feedback, vm, value):
        self.runtime = runtime
        self.counters = counters
        self.feedback = feedback
        self.vm = vm
        self.value = value

    @property
    def console(self) -> list[str]:
        return self.runtime.console_output


def run_jsl(source: str, seed: int = 42, filename: str = "test.jsl") -> ExecutionResult:
    """Compile and execute a snippet in a fresh runtime; return the state."""
    code = compile_source(source, filename)
    runtime = Runtime(seed=seed)
    counters = Counters()

    def on_created(hc):
        counters.hidden_classes_created += 1

    runtime.hidden_classes.on_created = on_created
    install_builtins(runtime)
    feedback = FeedbackState()
    feedback.register_script(code)
    ic_runtime = ICRuntime(runtime, counters)
    vm = VM(runtime, counters, ic_runtime, feedback)
    value = vm.run_code(code)
    return ExecutionResult(runtime, counters, feedback, vm, value)


def eval_jsl(expression: str, seed: int = 42) -> object:
    """Evaluate a single jsl expression and return its guest value."""
    result = run_jsl(f"var __result = ({expression});", seed=seed)
    found, value = result.runtime.global_object.get_own("__result")
    assert found, "expression did not produce a result"
    return value


def console_of(source: str, seed: int = 42) -> list[str]:
    """Run a snippet and return its console output lines."""
    return run_jsl(source, seed=seed).console


@pytest.fixture
def engine() -> Engine:
    return Engine(seed=123)


@pytest.fixture
def fresh_runtime() -> Runtime:
    runtime = Runtime(seed=7)
    install_builtins(runtime)
    return runtime
