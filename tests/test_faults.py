"""Chaos suite for the hardened ICRecord persistence path.

The contract under test: **no injected fault may change program results
or crash the VM** — the worst allowed outcome is losing the speedup for
the damaged record, visibly (degradation counters, store load errors,
quarantine files).  Every fault class in ``repro.faults.FAULTS`` is
driven through the full engine, several seeds each.
"""

import random

import pytest

from repro.core.config import RICConfig
from repro.core.engine import Engine
from repro.faults import FAULTS, FaultyRecordStore, inject_fault
from repro.harness.reporting import degradation_row, render_degradation
from repro.ric import (
    CorruptRecord,
    RecordFormatError,
    RecordStore,
    save_icrecord,
    try_load_icrecord,
)
from tests.helpers import run_cold_and_reused

LIB_SOURCE = """
function Point(x, y) { this.x = x; this.y = y; }
Point.prototype.norm1 = function () { return this.x + this.y; };
var acc = 0;
for (var i = 0; i < 20; i = i + 1) {
  var p = new Point(i, i + 1);
  acc = acc + p.norm1();
}
console.log("lib total:", acc);
"""

APP_SOURCE = """
var cfg = { depth: 3, label: "app" };
var sum = 0;
for (var j = 0; j < 10; j = j + 1) { sum = sum + cfg.depth; }
console.log("app:", cfg.label, sum);
"""

WORKLOAD = [("lib.jsl", LIB_SOURCE), ("app.jsl", APP_SOURCE)]


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """One Initial run + extraction, persisted once; each test copies it."""
    directory = tmp_path_factory.mktemp("records")
    engine = Engine(seed=31)
    engine.run(WORKLOAD, name="initial")
    record = engine.extract_icrecord()
    path = directory / "record.icrecord.json"
    save_icrecord(record, path)
    return path.read_bytes()


@pytest.mark.parametrize("fault", sorted(FAULTS))
def test_fault_degrades_to_cold_start(fault, pristine, tmp_path):
    """For every fault class: identical output to cold start, no uncaught
    exception, degradation visible in Counters.as_dict()."""
    path = tmp_path / "record.icrecord.json"
    for trial in range(5):
        path.write_bytes(pristine)
        inject_fault(path, fault, random.Random(1000 * trial + 7))

        loaded = try_load_icrecord(path)
        assert not isinstance(loaded, Engine)  # sanity: record or placeholder

        # icrecord= skips the helper's Initial run, so ``cold`` is this
        # engine's first — truly cold — run.
        runs = run_cold_and_reused(WORKLOAD, seed=57, name="damaged", icrecord=loaded)

        assert runs.outputs_identical, (fault, trial)
        snapshot = runs.reused.counters.as_dict()
        assert snapshot["ric_records_degraded"] > 0, (fault, trial)
        assert runs.reused.counters.ric_preloads == 0, (fault, trial)


@pytest.mark.parametrize("fault", sorted(FAULTS))
def test_healthy_record_still_reuses(fault, pristine, tmp_path):
    """Control arm: without injection the same pipeline does preload."""
    path = tmp_path / "record.icrecord.json"
    path.write_bytes(pristine)
    loaded = try_load_icrecord(path)
    assert not isinstance(loaded, CorruptRecord)
    runs = run_cold_and_reused(WORKLOAD, seed=57, name="ric", icrecord=loaded)
    assert runs.outputs_identical
    assert runs.reused.counters.ric_preloads > 0
    assert runs.reused.counters.as_dict()["ric_records_degraded"] == 0


def test_one_bad_record_does_not_poison_the_page(tmp_path):
    """Per-script records: the corrupt one cold-starts, the rest reuse."""
    engine = Engine(seed=23)
    engine.run(WORKLOAD, name="initial")
    records = engine.extract_per_script_records()
    assert set(records) == {"lib.jsl", "app.jsl"}

    bad = CorruptRecord(source="app.jsl", error="simulated storage rot")
    cold = engine.run(WORKLOAD, name="cold")
    mixed = engine.run(
        WORKLOAD, name="mixed", icrecord=[records["lib.jsl"], bad]
    )
    assert mixed.console_output == cold.console_output
    assert mixed.counters.ric_records_corrupt == 1
    assert mixed.counters.ric_preloads > 0  # lib.jsl still accelerated


def test_non_record_icrecord_is_a_typed_error():
    """Programmer error (not data corruption) gets a clear TypeError."""
    engine = Engine(seed=1)
    with pytest.raises(TypeError, match="ICRecord or CorruptRecord"):
        engine.run(WORKLOAD, name="bogus", icrecord="not a record")


def test_strict_validation_raises_instead_of_degrading(pristine, tmp_path):
    path = tmp_path / "record.icrecord.json"
    path.write_bytes(pristine)
    inject_fault(path, "stale_version", random.Random(7))
    loaded = try_load_icrecord(path)
    assert isinstance(loaded, CorruptRecord)

    engine = Engine(config=RICConfig(strict_validation=True), seed=57)
    with pytest.raises(RecordFormatError):
        engine.run(WORKLOAD, name="strict", icrecord=loaded)


@pytest.mark.parametrize("fault", ["truncation", "bit_flip", "field_mutation"])
def test_faulty_store_entries_are_quarantined(fault, tmp_path):
    """Damage written through the store is refused, counted, and moved to
    ``*.corrupt`` by the next honest reader."""
    engine = Engine(seed=11)
    engine.run(WORKLOAD, name="initial")
    records = engine.extract_per_script_records()

    faulty = FaultyRecordStore(tmp_path, fault=fault, probability=1.0, seed=3)
    for filename, source in WORKLOAD:
        faulty.put(filename, source, records[filename])
    assert len(faulty.injected) == len(WORKLOAD)

    fresh = RecordStore(directory=tmp_path)
    assert len(fresh) == 0
    assert len(fresh.load_errors) == len(WORKLOAD)
    assert len(list(tmp_path.glob("*.corrupt"))) == len(WORKLOAD)
    assert list(tmp_path.glob("*.icrecord.json")) == []

    # The degraded page still runs and matches cold-start output.
    cold = engine.run(WORKLOAD, name="cold")
    degraded = engine.run(
        WORKLOAD, name="degraded", icrecord=fresh.records_for(WORKLOAD)
    )
    assert degraded.console_output == cold.console_output


def test_faulty_store_partial_probability(tmp_path):
    """probability<1 damages some entries; the survivors still load."""
    engine = Engine(seed=11)
    engine.run(WORKLOAD, name="initial")
    records = engine.extract_per_script_records()
    faulty = FaultyRecordStore(
        tmp_path, fault="truncation", probability=0.5, seed=5
    )
    for round_trip in range(4):  # enough puts that both outcomes occur
        for filename, source in WORKLOAD:
            faulty.put(filename, source, records[filename])
    fresh = RecordStore(directory=tmp_path, quarantine=False)
    assert len(fresh) + len(fresh.load_errors) == len(WORKLOAD)


def test_degradation_reporting_surface(pristine, tmp_path):
    """degradation_row/render_degradation expose the new counters."""
    path = tmp_path / "record.icrecord.json"
    path.write_bytes(pristine)
    inject_fault(path, "truncation", random.Random(1))
    engine = Engine(seed=57)
    damaged = engine.run(
        WORKLOAD, name="damaged", icrecord=try_load_icrecord(path)
    )
    row = degradation_row("damaged", damaged.counters)
    assert row["records_corrupt"] == 1
    text = render_degradation([row])
    assert "damaged" in text and "Corrupt" in text
