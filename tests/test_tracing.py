"""Tests for the IC/RIC event tracer."""

from repro.core.engine import Engine
from repro.stats.tracing import (
    HANDLER_GENERATED,
    HC_CREATED,
    IC_MISS,
    PRELOADED_HIT,
    RIC_DIVERGENCE,
    RIC_PRELOADED,
    RIC_VALIDATED,
    SITE_MEGAMORPHIC,
    TraceEvent,
    Tracer,
)

SOURCE = """
function C() { this.v = 1; }
var a = new C();
var b = new C();
function read(o) { return o.v; }
read(a); read(b);
"""


def traced_protocol(source=SOURCE, seed=9):
    engine = Engine(seed=seed)
    initial_tracer = Tracer()
    engine.run(source, name="t", tracer=initial_tracer)
    record = engine.extract_icrecord()
    reuse_tracer = Tracer()
    engine.run(source, name="t", icrecord=record, tracer=reuse_tracer)
    return initial_tracer, reuse_tracer


class TestTracerBasics:
    def test_events_are_sequenced(self):
        initial, _ = traced_protocol()
        sequences = [event.sequence for event in initial.events]
        assert sequences == list(range(len(sequences)))

    def test_initial_run_has_misses_and_creations(self):
        initial, _ = traced_protocol()
        assert initial.count(IC_MISS) > 0
        assert initial.count(HC_CREATED) > 0
        assert initial.count(HANDLER_GENERATED) > 0
        # No RIC events without a record.
        assert initial.count(RIC_VALIDATED) == 0
        assert initial.count(RIC_PRELOADED) == 0

    def test_reuse_run_has_ric_events(self):
        _, reuse = traced_protocol()
        assert reuse.count(RIC_VALIDATED) > 0
        assert reuse.count(RIC_PRELOADED) > 0
        assert reuse.count(PRELOADED_HIT) > 0

    def test_counts_match_counters(self):
        engine = Engine(seed=9)
        tracer = Tracer()
        profile = engine.run(SOURCE, name="t", tracer=tracer)
        assert tracer.count(IC_MISS) == profile.counters.ic_misses - (
            profile.counters.misses_by_reason["global"]
        )
        assert tracer.count(HC_CREATED) == profile.counters.hidden_classes_created
        assert tracer.count(HANDLER_GENERATED) == profile.counters.handlers_generated

    def test_validation_order_builtins_first(self):
        _, reuse = traced_protocol()
        validations = reuse.by_kind(RIC_VALIDATED)
        # The first validations happen during builtin installation, before
        # any guest code runs (paper §4: builtins validated at startup).
        creations = reuse.by_kind(HC_CREATED)
        assert creations[0].site_key.startswith("builtin:")
        assert validations[0].sequence < 30

    def test_preload_precedes_preloaded_hit(self):
        _, reuse = traced_protocol()
        preload = reuse.by_kind(RIC_PRELOADED)[0]
        hits = [
            event
            for event in reuse.by_kind(PRELOADED_HIT)
            if event.site_key == preload.site_key
        ]
        assert hits and all(event.sequence > preload.sequence for event in hits)


class TestTracerQueries:
    def test_for_site(self):
        initial, _ = traced_protocol()
        miss = initial.by_kind(IC_MISS)[0]
        assert miss in initial.for_site(miss.site_key)

    def test_summary_totals(self):
        initial, _ = traced_protocol()
        assert sum(initial.summary().values()) == len(initial.events)

    def test_render_and_limit(self):
        initial, _ = traced_protocol()
        text = initial.render(limit=3)
        assert "more events" in text
        assert len(text.splitlines()) == 4

    def test_kind_filter(self):
        engine = Engine(seed=9)
        tracer = Tracer(kinds={IC_MISS})
        engine.run(SOURCE, name="t", tracer=tracer)
        assert tracer.events
        assert all(event.kind == IC_MISS for event in tracer.events)

    def test_event_str(self):
        event = TraceEvent(0, IC_MISS, site_key="a.jsl:1:1:named_load", hc_index=3)
        text = str(event)
        assert "ic_miss" in text and "a.jsl:1:1" in text and "hc=#3" in text


class TestTraceSemantics:
    def test_divergence_traced(self):
        template = """
        var o = {};
        if (BRANCH) o.x = 1;
        o.y = 2;
        console.log(o.y);
        """
        def scripts(branch):
            return [
                ("config.jsl", f"var BRANCH = {'true' if branch else 'false'};"),
                ("f.jsl", template),
            ]
        engine = Engine(seed=9)
        engine.run(scripts(False), name="f")
        record = engine.extract_icrecord()
        tracer = Tracer()
        engine.run(scripts(True), name="f", icrecord=record, tracer=tracer)
        divergences = tracer.by_kind(RIC_DIVERGENCE)
        assert divergences
        assert any("named_store" in (event.site_key or "") for event in divergences)

    def test_megamorphic_transition_traced(self):
        source = """
        function read(o) { return o.v; }
        var shapes = [
          {v: 1}, {a: 0, v: 2}, {b: 0, v: 3}, {c: 0, v: 4}, {d: 0, v: 5}
        ];
        var total = 0;
        for (var i = 0; i < shapes.length; i++) { total += read(shapes[i]); }
        """
        engine = Engine(seed=9)
        tracer = Tracer()
        engine.run(source, name="m", tracer=tracer)
        assert tracer.count(SITE_MEGAMORPHIC) >= 1

    def test_tracing_does_not_change_measurements(self):
        engine = Engine(seed=9)
        # Warm the in-process code cache so both compared runs see a hit
        # (bytecode_cache_* counters differ between a cold and warm run
        # regardless of tracing).
        engine.run(SOURCE, name="t", seed=1)
        with_tracer = engine.run(SOURCE, name="t", seed=1, tracer=Tracer())
        without = engine.run(SOURCE, name="t", seed=1)
        assert with_tracer.counters.as_dict() == without.counters.as_dict()
