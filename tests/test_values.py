"""Unit tests for guest values and coercions."""

import math

import pytest

from repro.runtime.values import (
    NULL,
    UNDEFINED,
    is_nullish,
    loose_equals,
    number_to_string,
    strict_equals,
    to_boolean,
    to_int32,
    to_number,
    to_property_key,
    to_string,
    to_uint32,
    type_of,
)


class TestSingletons:
    def test_undefined_is_singleton(self):
        assert type(UNDEFINED)() is UNDEFINED

    def test_null_is_singleton(self):
        assert type(NULL)() is NULL

    def test_nullish(self):
        assert is_nullish(UNDEFINED) and is_nullish(NULL)
        assert not is_nullish(0.0) and not is_nullish("")

    def test_reprs(self):
        assert repr(UNDEFINED) == "undefined"
        assert repr(NULL) == "null"


class TestToBoolean:
    @pytest.mark.parametrize(
        "value", [UNDEFINED, NULL, False, 0.0, -0.0, float("nan"), ""]
    )
    def test_falsy(self, value):
        assert to_boolean(value) is False

    @pytest.mark.parametrize("value", [True, 1.0, -1.0, "x", "0", float("inf")])
    def test_truthy(self, value):
        assert to_boolean(value) is True


class TestToNumber:
    def test_booleans(self):
        assert to_number(True) == 1.0 and to_number(False) == 0.0

    def test_undefined_is_nan(self):
        assert math.isnan(to_number(UNDEFINED))

    def test_null_is_zero(self):
        assert to_number(NULL) == 0.0

    def test_empty_string_is_zero(self):
        assert to_number("") == 0.0 and to_number("   ") == 0.0

    def test_numeric_strings(self):
        assert to_number("42") == 42.0
        assert to_number(" 3.5 ") == 3.5
        assert to_number("0x10") == 16.0

    def test_garbage_string_is_nan(self):
        assert math.isnan(to_number("12abc"))


class TestNumberToString:
    def test_integral_drops_point(self):
        assert number_to_string(42.0) == "42"
        assert number_to_string(-3.0) == "-3"

    def test_fractional(self):
        assert number_to_string(1.5) == "1.5"

    def test_specials(self):
        assert number_to_string(float("nan")) == "NaN"
        assert number_to_string(float("inf")) == "Infinity"
        assert number_to_string(float("-inf")) == "-Infinity"

    def test_property_key_from_number(self):
        assert to_property_key(3.0) == "3"
        assert to_property_key(2.5) == "2.5"


class TestToString:
    def test_primitives(self):
        assert to_string(UNDEFINED) == "undefined"
        assert to_string(NULL) == "null"
        assert to_string(True) == "true"
        assert to_string(False) == "false"
        assert to_string("x") == "x"
        assert to_string(7.0) == "7"


class TestTypeOf:
    def test_all_kinds(self):
        assert type_of(UNDEFINED) == "undefined"
        assert type_of(NULL) == "object"  # the JS quirk
        assert type_of(True) == "boolean"
        assert type_of(1.0) == "number"
        assert type_of("s") == "string"


class TestStrictEquals:
    def test_numbers(self):
        assert strict_equals(1.0, 1.0)
        assert not strict_equals(1.0, 2.0)

    def test_nan_not_equal_to_itself(self):
        assert not strict_equals(float("nan"), float("nan"))

    def test_bool_not_equal_to_number(self):
        assert not strict_equals(True, 1.0)
        assert not strict_equals(False, 0.0)

    def test_strings(self):
        assert strict_equals("a", "a") and not strict_equals("a", "b")

    def test_identity_for_sentinels(self):
        assert strict_equals(UNDEFINED, UNDEFINED)
        assert not strict_equals(UNDEFINED, NULL)


class TestLooseEquals:
    def test_null_undefined_equal(self):
        assert loose_equals(NULL, UNDEFINED)
        assert loose_equals(UNDEFINED, NULL)

    def test_null_not_equal_zero(self):
        assert not loose_equals(NULL, 0.0)

    def test_number_string_coercion(self):
        assert loose_equals(1.0, "1")
        assert loose_equals("2.5", 2.5)

    def test_boolean_coercion(self):
        assert loose_equals(True, 1.0)
        assert loose_equals(False, "0")


class TestInt32:
    def test_wrapping(self):
        assert to_int32(2.0**31) == -(2**31)
        assert to_int32(2.0**32 + 5) == 5

    def test_nan_and_inf_are_zero(self):
        assert to_int32(float("nan")) == 0
        assert to_int32(float("inf")) == 0

    def test_uint32(self):
        assert to_uint32(-1.0) == 2**32 - 1
        assert to_uint32(float("nan")) == 0
