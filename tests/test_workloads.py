"""Tests over the seven library workloads and the synthetic websites."""

import pytest

from repro.core.engine import Engine
from repro.workloads import (
    WORKLOAD_NAMES,
    WORKLOADS,
    get_workload,
    website_a,
    website_b,
)
from tests.helpers import run_cold_and_reused


@pytest.fixture(scope="module")
def measurements():
    """Full protocol on every workload, computed once for this module."""
    results = {}
    for name in WORKLOAD_NAMES:
        engine = Engine(seed=5)
        results[name] = engine.measure_workload(
            WORKLOADS[name].scripts(), name=name
        )
    return results


class TestRegistry:
    def test_seven_workloads(self):
        assert len(WORKLOADS) == 7

    def test_names_match_paper_libraries(self):
        assert set(WORKLOAD_NAMES) == {
            "angularlike",
            "camanlike",
            "handlebarslike",
            "jquerylike",
            "jsfeatlike",
            "reactlike",
            "underscorelike",
        }

    def test_get_workload_error_lists_names(self):
        with pytest.raises(KeyError, match="underscorelike"):
            get_workload("nope")

    def test_sources_are_nontrivial(self):
        for workload in WORKLOADS.values():
            assert len(workload.source.splitlines()) > 80, workload.name


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestEachWorkload:
    def test_self_check_passes(self, name, measurements):
        output = measurements[name].initial.console_output
        assert output, f"{name} produced no output"
        assert output[-1].endswith("true"), f"{name} self-check failed: {output[-1]}"

    def test_outputs_identical_across_all_runs(self, name, measurements):
        m = measurements[name]
        assert (
            m.initial.console_output
            == m.conventional.console_output
            == m.ric.console_output
        )

    def test_ric_reduces_misses(self, name, measurements):
        m = measurements[name]
        assert m.ric.counters.ic_misses < m.conventional.counters.ic_misses

    def test_ric_reduces_instructions(self, name, measurements):
        m = measurements[name]
        assert m.ric.total_instructions < m.conventional.total_instructions

    def test_ric_preloads_fire_and_hit(self, name, measurements):
        counters = measurements[name].ric.counters
        assert counters.ric_preloads > 0
        assert counters.ic_hits_on_preloaded > 0

    def test_conventional_matches_initial_ic_profile(self, name, measurements):
        m = measurements[name]
        assert m.initial.counters.ic_misses == m.conventional.counters.ic_misses

    def test_record_is_compact_relative_to_heap(self, name, measurements):
        from repro.ric.serialize import record_size_bytes

        m = measurements[name]
        assert record_size_bytes(m.record) < 0.05 * m.conventional.heap_bytes


class TestAggregateShape:
    """The paper's qualitative claims that must hold in aggregate."""

    def test_react_has_most_misses(self, measurements):
        misses = {n: m.initial.counters.ic_misses for n, m in measurements.items()}
        assert max(misses, key=misses.get) == "reactlike"

    def test_react_and_jsfeat_have_lowest_initial_miss_rates(self, measurements):
        rates = {n: m.initial.ic_miss_rate for n, m in measurements.items()}
        lowest_three = sorted(rates, key=rates.get)[:3]
        assert {"reactlike", "jsfeatlike"} <= set(lowest_three)

    def test_underscore_angular_among_highest_miss_rates(self, measurements):
        rates = {n: m.initial.ic_miss_rate for n, m in measurements.items()}
        highest_three = sorted(rates, key=rates.get, reverse=True)[:3]
        assert {"underscorelike", "angularlike"} <= set(highest_three)

    def test_average_instruction_saving_in_band(self, measurements):
        normalized = [m.normalized_instructions for m in measurements.values()]
        average = sum(normalized) / len(normalized)
        # Paper: 0.85.  Accept the band [0.75, 0.95]: RIC must clearly win.
        assert 0.75 <= average <= 0.95

    def test_average_ci_handler_fraction_in_band(self, measurements):
        fractions = [
            m.initial.counters.context_independent_handler_fraction
            for m in measurements.values()
        ]
        average = sum(fractions) / len(fractions)
        # Paper: 0.596 average across Table 1.
        assert 0.40 <= average <= 0.80

    def test_miss_rate_strictly_drops_everywhere(self, measurements):
        for name, m in measurements.items():
            assert m.ric.ic_miss_rate < m.initial.ic_miss_rate, name

    def test_other_dominates_reuse_breakdown(self, measurements):
        """Paper Table 4: the 'Other' component is the dominant one."""
        total_handler = sum(
            m.ric.miss_breakdown_pct["handler"] for m in measurements.values()
        )
        total_global = sum(
            m.ric.miss_breakdown_pct["global"] for m in measurements.values()
        )
        total_other = sum(
            m.ric.miss_breakdown_pct["other"] for m in measurements.values()
        )
        assert total_other > total_handler
        assert total_other > total_global


class TestWebsites:
    def test_orders_are_permutations(self):
        from repro.workloads import WEBSITE_A_ORDER, WEBSITE_B_ORDER

        assert sorted(WEBSITE_A_ORDER) == sorted(WEBSITE_B_ORDER)
        assert WEBSITE_A_ORDER != WEBSITE_B_ORDER

    def test_website_scripts_cover_all_libraries(self):
        names = [filename for filename, _ in website_a()]
        assert len(names) == 7

    def test_cross_website_reuse_correct_and_faster(self):
        runs = run_cold_and_reused(
            website_b(), seed=3, name="site-b", record_from=website_a()
        )
        assert sorted(runs.cold.console_output) == sorted(
            runs.reused.console_output
        )
        assert runs.reused.counters.ic_misses < runs.cold.counters.ic_misses
        assert runs.reused.total_instructions < runs.cold.total_instructions

    def test_all_libraries_coexist_in_one_page(self):
        engine = Engine(seed=4)
        profile = engine.run(website_a(), name="site-a")
        ready_lines = [l for l in profile.console_output if "ready" in l]
        assert len(ready_lines) == 7
        assert all(line.endswith("true") for line in ready_lines)
