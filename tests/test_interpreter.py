"""End-to-end language-semantics tests: compile + run jsl snippets."""

import math

import pytest

from repro.lang.errors import JSLCompileError, JSLReferenceError, JSLRuntimeError
from repro.runtime.values import NULL, UNDEFINED

from tests.helpers import console_of, eval_jsl, run_jsl


class TestArithmetic:
    def test_basic_math(self):
        assert eval_jsl("1 + 2 * 3") == 7.0

    def test_division(self):
        assert eval_jsl("7 / 2") == 3.5

    def test_division_by_zero(self):
        assert eval_jsl("1 / 0") == float("inf")
        assert eval_jsl("-1 / 0") == float("-inf")
        assert math.isnan(eval_jsl("0 / 0"))

    def test_modulo_truncates_like_js(self):
        assert eval_jsl("7 % 3") == 1.0
        assert eval_jsl("-7 % 3") == -1.0  # JS remainder keeps dividend sign

    def test_string_concat(self):
        assert eval_jsl("'a' + 1") == "a1"
        assert eval_jsl("1 + '2'") == "12"

    def test_unary(self):
        assert eval_jsl("-(3)") == -3.0
        assert eval_jsl("+'5'") == 5.0
        assert eval_jsl("!0") is True
        assert eval_jsl("~0") == -1.0

    def test_bitwise(self):
        assert eval_jsl("(5 & 3)") == 1.0
        assert eval_jsl("(5 | 3)") == 7.0
        assert eval_jsl("(5 ^ 3)") == 6.0
        assert eval_jsl("(1 << 4)") == 16.0
        assert eval_jsl("(-8 >> 1)") == -4.0
        assert eval_jsl("(-1 >>> 28)") == 15.0

    def test_comparisons(self):
        assert eval_jsl("1 < 2") is True
        assert eval_jsl("'b' > 'a'") is True
        assert eval_jsl("2 <= 2") is True
        assert eval_jsl("NaN < 1") is False
        assert eval_jsl("NaN >= 1") is False

    def test_equality(self):
        assert eval_jsl("1 == '1'") is True
        assert eval_jsl("1 === '1'") is False
        assert eval_jsl("null == undefined") is True
        assert eval_jsl("null === undefined") is False


class TestVariablesAndScope:
    def test_globals_visible_across_statements(self):
        assert console_of("var a = 1; var b = a + 1; console.log(b);") == ["2"]

    def test_function_locals_shadow_globals(self):
        out = console_of(
            """
            var x = "global";
            function f() { var x = "local"; return x; }
            console.log(f(), x);
            """
        )
        assert out == ["local global"]

    def test_var_hoisting(self):
        out = console_of(
            """
            function f() { var seen = typeof y; var y = 1; return seen; }
            console.log(f());
            """
        )
        assert out == ["undefined"]

    def test_function_hoisting(self):
        out = console_of(
            """
            function f() { return g(); }
            console.log(f());
            function g() { return 42; }
            """
        )
        assert out == ["42"]

    def test_undeclared_global_read_throws(self):
        with pytest.raises(JSLReferenceError):
            run_jsl("var x = missing + 1;")

    def test_undeclared_assignment_creates_global(self):
        out = console_of("function f() { leaked = 9; } f(); console.log(leaked);")
        assert out == ["9"]

    def test_closures_capture_variables(self):
        out = console_of(
            """
            function makeCounter() {
              var n = 0;
              return function () { n = n + 1; return n; };
            }
            var c1 = makeCounter();
            var c2 = makeCounter();
            c1(); c1();
            console.log(c1(), c2());
            """
        )
        assert out == ["3 1"]

    def test_nested_closure_depth(self):
        out = console_of(
            """
            function a(x) {
              return function b(y) {
                return function c(z) { return x + y + z; };
              };
            }
            console.log(a(1)(2)(3));
            """
        )
        assert out == ["6"]

    def test_iife_isolation(self):
        out = console_of(
            """
            var api = (function () {
              var secret = 41;
              return { get: function () { return secret + 1; } };
            })();
            console.log(api.get(), typeof secret);
            """
        )
        assert out == ["42 undefined"]


class TestControlFlow:
    def test_if_else_chain(self):
        src = """
        function grade(n) {
          if (n > 90) return "A";
          else if (n > 80) return "B";
          else return "C";
        }
        console.log(grade(95), grade(85), grade(10));
        """
        assert console_of(src) == ["A B C"]

    def test_while_and_break(self):
        out = console_of(
            """
            var i = 0;
            while (true) { i++; if (i >= 5) break; }
            console.log(i);
            """
        )
        assert out == ["5"]

    def test_continue(self):
        out = console_of(
            """
            var evens = [];
            for (var i = 0; i < 10; i++) {
              if (i % 2 === 1) continue;
              evens.push(i);
            }
            console.log(evens.join(","));
            """
        )
        assert out == ["0,2,4,6,8"]

    def test_do_while_runs_once(self):
        assert console_of("var n = 0; do { n++; } while (false); console.log(n);") == ["1"]

    def test_for_in_over_object(self):
        out = console_of(
            """
            var o = {a: 1, b: 2, c: 3};
            var keys = [];
            for (var k in o) keys.push(k);
            console.log(keys.join(""));
            """
        )
        assert out == ["abc"]

    def test_for_in_over_array_indices(self):
        out = console_of(
            """
            var a = ["x", "y"];
            var seen = [];
            for (var i in a) seen.push(i);
            console.log(seen.join(","));
            """
        )
        assert out == ["0,1"]

    def test_switch_fallthrough_and_default(self):
        src = """
        function f(x) {
          var log = "";
          switch (x) {
            case 1: log += "one ";
            case 2: log += "two "; break;
            case 3: log += "three "; break;
            default: log += "other ";
          }
          return log;
        }
        console.log(f(1) + "|" + f(2) + "|" + f(3) + "|" + f(9));
        """
        assert console_of(src) == ["one two |two |three |other "]

    def test_logical_short_circuit(self):
        out = console_of(
            """
            var calls = 0;
            function bump() { calls++; return true; }
            var a = false && bump();
            var b = true || bump();
            console.log(calls, a, b);
            """
        )
        assert out == ["0 false true"]

    def test_logical_returns_operand_value(self):
        assert eval_jsl("0 || 'fallback'") == "fallback"
        assert eval_jsl("'x' && 5") == 5.0

    def test_ternary(self):
        assert eval_jsl("1 > 0 ? 'y' : 'n'") == "y"

    def test_comma_operator(self):
        assert eval_jsl("(1, 2, 3)") == 3.0


class TestFunctions:
    def test_missing_args_are_undefined(self):
        assert console_of(
            "function f(a, b) { return typeof b; } console.log(f(1));"
        ) == ["undefined"]

    def test_extra_args_dropped(self):
        assert console_of(
            "function f(a) { return a; } console.log(f(1, 2, 3));"
        ) == ["1"]

    def test_function_returns_undefined_by_default(self):
        assert console_of("function f() {} console.log(f());") == ["undefined"]

    def test_recursion(self):
        src = """
        function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
        console.log(fib(12));
        """
        assert console_of(src) == ["144"]

    def test_mutual_recursion(self):
        src = """
        function isEven(n) { return n === 0 ? true : isOdd(n - 1); }
        function isOdd(n) { return n === 0 ? false : isEven(n - 1); }
        console.log(isEven(10), isOdd(7));
        """
        assert console_of(src) == ["true true"]

    def test_first_class_functions(self):
        src = """
        function apply(f, x) { return f(x); }
        console.log(apply(function (v) { return v * 2; }, 21));
        """
        assert console_of(src) == ["42"]

    def test_deep_recursion_raises_guest_range_error(self):
        src = """
        function loop(n) { return loop(n + 1); }
        var msg = "no error";
        try { loop(0); } catch (e) { msg = "caught"; }
        console.log(msg);
        """
        assert console_of(src) == ["caught"]

    def test_call_and_apply(self):
        src = """
        function greet(greeting) { return greeting + " " + this.name; }
        var alice = {name: "alice"};
        console.log(greet.call(alice, "hi"), greet.apply(alice, ["yo"]));
        """
        assert console_of(src) == ["hi alice yo alice"]

    def test_calling_non_function_throws_catchable(self):
        src = """
        var msg = "";
        try { var x = 5; x(); } catch (e) { msg = e.name; }
        console.log(msg);
        """
        assert console_of(src) == ["TypeError"]


class TestObjectsAndPrototypes:
    def test_constructor_and_this(self):
        src = """
        function Point(x, y) { this.x = x; this.y = y; }
        var p = new Point(3, 4);
        console.log(p.x + p.y);
        """
        assert console_of(src) == ["7"]

    def test_prototype_methods_shared(self):
        src = """
        function Dog(name) { this.name = name; }
        Dog.prototype.speak = function () { return this.name + " woofs"; };
        var a = new Dog("rex");
        var b = new Dog("fido");
        console.log(a.speak(), b.speak(), a.speak === b.speak);
        """
        assert console_of(src) == ["rex woofs fido woofs true"]

    def test_prototype_chain_two_levels(self):
        src = """
        function Animal() {}
        Animal.prototype.kind = "animal";
        function Dog() {}
        Dog.prototype = new Animal();
        Dog.prototype.bark = function () { return "woof"; };
        var d = new Dog();
        console.log(d.kind, d.bark(), d instanceof Dog, d instanceof Animal);
        """
        assert console_of(src) == ["animal woof true true"]

    def test_own_property_shadows_prototype(self):
        src = """
        function C() {}
        C.prototype.v = "proto";
        var o = new C();
        o.v = "own";
        var p = new C();
        console.log(o.v, p.v);
        """
        assert console_of(src) == ["own proto"]

    def test_missing_property_is_undefined(self):
        assert console_of("var o = {}; console.log(o.nothing);") == ["undefined"]

    def test_method_call_this_binding(self):
        src = """
        var counter = {
          n: 0,
          inc: function () { this.n++; return this.n; }
        };
        counter.inc(); counter.inc();
        console.log(counter.n);
        """
        assert console_of(src) == ["2"]

    def test_keyed_access_equivalent_to_named(self):
        src = """
        var o = {alpha: 1};
        o["beta"] = 2;
        console.log(o.beta, o["alpha"], o["al" + "pha"]);
        """
        assert console_of(src) == ["2 1 1"]

    def test_delete_property(self):
        src = """
        var o = {a: 1, b: 2};
        console.log(delete o.a, o.a, o.b);
        """
        assert console_of(src) == ["true undefined 2"]

    def test_in_operator(self):
        src = """
        function C() { this.own = 1; }
        C.prototype.inherited = 2;
        var o = new C();
        console.log("own" in o, "inherited" in o, "missing" in o);
        """
        assert console_of(src) == ["true true false"]

    def test_constructor_returning_object_overrides_this(self):
        src = """
        function F() { this.a = 1; return {b: 2}; }
        var o = new F();
        console.log(o.a, o.b);
        """
        assert console_of(src) == ["undefined 2"]

    def test_hasOwnProperty(self):
        src = """
        function C() { this.own = 1; }
        C.prototype.inherited = 2;
        var o = new C();
        console.log(o.hasOwnProperty("own"), o.hasOwnProperty("inherited"));
        """
        assert console_of(src) == ["true false"]

    def test_prototype_reassignment_affects_new_instances_only(self):
        src = """
        function C() {}
        C.prototype.tag = "old";
        var before = new C();
        C.prototype = {tag: "new"};
        var after = new C();
        console.log(before.tag, after.tag);
        """
        assert console_of(src) == ["old new"]

    def test_update_operators_on_members(self):
        src = """
        var o = {n: 5};
        var post = o.n++;
        var pre = ++o.n;
        console.log(post, pre, o.n);
        """
        assert console_of(src) == ["5 7 7"]

    def test_compound_assignment_on_members(self):
        src = """
        var o = {n: 10};
        o.n += 5;
        o.n *= 2;
        console.log(o.n);
        """
        assert console_of(src) == ["30"]

    def test_update_on_keyed_element(self):
        src = """
        var a = [1, 2, 3];
        a[1]++;
        a[0] += 10;
        console.log(a.join(","));
        """
        assert console_of(src) == ["11,3,3"]


class TestExceptions:
    def test_throw_and_catch_value(self):
        assert console_of(
            "try { throw 'boom'; } catch (e) { console.log('got', e); }"
        ) == ["got boom"]

    def test_finally_runs_on_success(self):
        out = console_of(
            """
            var log = [];
            try { log.push("try"); } catch (e) { log.push("catch"); }
            finally { log.push("finally"); }
            console.log(log.join(","));
            """
        )
        assert out == ["try,finally"]

    def test_finally_runs_on_exception(self):
        out = console_of(
            """
            var log = [];
            try { log.push("try"); throw 1; }
            catch (e) { log.push("catch"); }
            finally { log.push("finally"); }
            console.log(log.join(","));
            """
        )
        assert out == ["try,catch,finally"]

    def test_finally_without_catch_rethrows(self):
        out = console_of(
            """
            var log = [];
            function f() {
              try { throw "inner"; } finally { log.push("cleanup"); }
            }
            try { f(); } catch (e) { log.push("outer:" + e); }
            console.log(log.join(","));
            """
        )
        assert out == ["cleanup,outer:inner"]

    def test_nested_try(self):
        out = console_of(
            """
            var log = [];
            try {
              try { throw "a"; } catch (e) { log.push("inner:" + e); throw "b"; }
            } catch (e) { log.push("outer:" + e); }
            console.log(log.join(","));
            """
        )
        assert out == ["inner:a,outer:b"]

    def test_exception_across_function_calls(self):
        out = console_of(
            """
            function deep() { throw new Error("deep failure"); }
            function middle() { deep(); }
            try { middle(); } catch (e) { console.log(e.message); }
            """
        )
        assert out == ["deep failure"]

    def test_uncaught_exception_surfaces_to_host(self):
        with pytest.raises(JSLRuntimeError):
            run_jsl("throw 'unhandled';")

    def test_error_toString(self):
        out = console_of(
            """
            try { throw new TypeError("bad type"); }
            catch (e) { console.log(e.toString()); }
            """
        )
        assert out == ["TypeError: bad type"]

    def test_return_through_finally_rejected_at_compile_time(self):
        with pytest.raises(JSLCompileError):
            run_jsl("function f() { try { return 1; } finally { var x = 2; } }")

    def test_break_across_try_rejected(self):
        with pytest.raises(JSLCompileError):
            run_jsl("while (true) { try { break; } catch (e) {} }")


class TestStringsAndNumbersAtRuntime:
    def test_string_length_and_methods(self):
        src = """
        var s = "Hello World";
        console.log(s.length, s.charAt(0), s.indexOf("o"), s.indexOf("o", 5));
        """
        assert console_of(src) == ["11 H 4 7"]

    def test_string_slice_substring(self):
        src = """
        var s = "abcdef";
        console.log(s.slice(1, 3), s.slice(-2), s.substring(4, 2));
        """
        assert console_of(src) == ["bc ef cd"]

    def test_split_join_roundtrip(self):
        assert console_of(
            "console.log('a-b-c'.split('-').join('+'));"
        ) == ["a+b+c"]

    def test_number_methods(self):
        assert console_of("console.log((3.14159).toFixed(2), (255).toString());") == [
            "3.14 255"
        ]

    def test_string_index_access(self):
        assert console_of("var s = 'xyz'; console.log(s[1]);") == ["y"]

    def test_parse_functions(self):
        src = """
        console.log(parseInt("42px"), parseInt("ff", 16), parseFloat("2.5rem"), isNaN(parseInt("x")));
        """
        assert console_of(src) == ["42 255 2.5 true"]


class TestTopLevelResult:
    def test_run_code_returns_undefined_by_default(self):
        assert run_jsl("var x = 1;").value is UNDEFINED

    def test_null_literal_value(self):
        assert eval_jsl("null") is NULL


class TestErrorDiagnostics:
    def test_uncaught_throw_reports_stack_trace(self):
        source = """function deep() {
  throw new Error("exploded");
}
function middle() {
  deep();
}
middle();
"""
        with pytest.raises(JSLRuntimeError) as exc_info:
            run_jsl(source, filename="trace.jsl")
        message = str(exc_info.value)
        assert "Error: exploded" in message
        assert "at deep (trace.jsl:2:" in message
        assert "at middle (trace.jsl:5:" in message
        assert "at <toplevel> (trace.jsl:7:" in message

    def test_runtime_error_carries_position(self):
        source = "var a = 1;\nvar b = 2;\nnull.boom;\n"
        with pytest.raises(JSLRuntimeError) as exc_info:
            run_jsl(source, filename="pos.jsl")
        position = exc_info.value.position
        assert position is not None
        assert position.filename == "pos.jsl"
        assert position.line == 3

    def test_thrown_string_summary(self):
        with pytest.raises(JSLRuntimeError, match="uncaught guest exception: kaput"):
            run_jsl("throw 'kaput';")

    def test_trace_orders_innermost_first(self):
        source = "function a() { throw 1; }\nfunction b() { a(); }\nb();\n"
        with pytest.raises(JSLRuntimeError) as exc_info:
            run_jsl(source, filename="o.jsl")
        message = str(exc_info.value)
        assert message.index("at a ") < message.index("at b ")
        assert message.index("at b ") < message.index("at <toplevel> ")
