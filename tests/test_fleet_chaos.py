"""The fleet chaos wall (ISSUE 6 acceptance): with a 3-shard/R=2 ring,
any *single* shard failure — abrupt kill, network partition, pathological
slowness — leaves program output bit-identical and moves no counter
except the ``ric_remote_*`` degradation family; and after an epoch bump,
no pre-epoch record is ever returned by any shard or replica.

Runs real in-process daemons (plus fault proxies for partition/slow) —
multi-threaded and timing-dependent, so the suite is ``slow``-marked and
lives in the non-blocking chaos CI job.
"""

import socket

import pytest

from repro.bytecode.cache import source_hash
from repro.core.engine import Engine
from repro.faults import FlakySocketProxy, kill_shard
from repro.ric.store import RecordStore
from repro.server import HashRing, RecordCacheDaemon, ShardedRecordStore

pytestmark = [
    pytest.mark.slow,
    pytest.mark.net,
    pytest.mark.skipif(
        not hasattr(socket, "AF_UNIX"), reason="unix sockets required"
    ),
]

LIB_SOURCE = """
function Point(x, y) { this.x = x; this.y = y; }
Point.prototype.norm1 = function () { return this.x + this.y; };
var acc = 0;
for (var i = 0; i < 25; i = i + 1) {
  var p = new Point(i, i + 1);
  acc = acc + p.norm1();
}
console.log("lib total:", acc);
"""

APP_SOURCE = """
var cfg = { depth: 3, label: "app" };
var sum = 0;
for (var j = 0; j < 12; j = j + 1) { sum = sum + cfg.depth; }
console.log("app:", cfg.label, sum);
"""

WORKLOAD = [("lib.jsl", LIB_SOURCE), ("app.jsl", APP_SOURCE)]


@pytest.fixture
def fleet(tmp_path):
    daemons = []
    for i in range(3):
        daemon = RecordCacheDaemon(
            tmp_path / f"shard{i}.sock", directory=tmp_path / f"records{i}"
        )
        daemon.start()
        daemons.append(daemon)
    yield daemons
    for daemon in daemons:
        daemon.stop()


def fleet_store(endpoints, tmp_path, tag: str) -> ShardedRecordStore:
    """A fresh sharded client with fast, deterministic failure behavior."""
    return ShardedRecordStore(
        endpoints,
        fallback=RecordStore(directory=tmp_path / f"local-{tag}"),
        replication=2,
        timeout_s=0.4,
        retries=0,
        retry_after_s=0.0,
        request_deadline_s=2.0,
    )


def warm_fleet(endpoints, tmp_path) -> None:
    """One cold engine publishes WORKLOAD's records into the fleet."""
    store = fleet_store(endpoints, tmp_path, "warm")
    engine = Engine(seed=11, record_store=store)
    engine.run(WORKLOAD, name="warm", use_store=True)
    engine.publish_records()
    assert store.stats_snapshot()["puts"] == 2
    store.close()


def reuse_run(endpoints, tmp_path, tag: str):
    """A fresh engine doing a store-fed reuse run; returns its profile
    and the store's logical stats."""
    store = fleet_store(endpoints, tmp_path, tag)
    engine = Engine(seed=42, record_store=store)
    profile = engine.run(WORKLOAD, name=tag, use_store=True)
    stats = store.stats_snapshot()
    store.close()
    return profile, stats


def non_remote_counters(profile) -> dict:
    """Every run counter except the ric_remote_* degradation family —
    the set the chaos wall requires to be invariant."""
    return {
        key: value
        for key, value in profile.counters.as_dict().items()
        if not key.startswith("ric_remote_")
    }


def primary_of(store_endpoints, filename, source) -> str:
    """The shard a key routes to first — the interesting one to break."""
    ring = HashRing(store_endpoints)
    return ring.primary(f"{filename}:{source_hash(source)}")


class TestKillAnyShard:
    @pytest.mark.parametrize("victim", [0, 1, 2])
    def test_single_shard_kill_is_invisible_outside_remote_counters(
        self, fleet, tmp_path, victim
    ):
        endpoints = [str(d.socket_path) for d in fleet]
        warm_fleet(endpoints, tmp_path)
        baseline, baseline_stats = reuse_run(endpoints, tmp_path, "baseline")
        assert baseline.counters.ric_remote_hits == 2

        kill_shard(fleet[victim])
        degraded, stats = reuse_run(endpoints, tmp_path, f"kill{victim}")

        assert degraded.console_output == baseline.console_output
        assert non_remote_counters(degraded) == non_remote_counters(baseline)
        # R=2: the surviving replica still serves every key.
        assert degraded.counters.ric_remote_hits == 2
        # Only the degradation family moved (whether this victim was a
        # primary or not is the ring's business; a primary kill shows up
        # as failovers).
        assert stats["fallbacks"] == 0

    def test_kill_mid_sequence_between_runs(self, fleet, tmp_path):
        endpoints = [str(d.socket_path) for d in fleet]
        warm_fleet(endpoints, tmp_path)
        victim = primary_of(endpoints, "lib.jsl", LIB_SOURCE)

        store = fleet_store(endpoints, tmp_path, "seq")
        engine = Engine(seed=42, record_store=store)
        healthy = engine.run(WORKLOAD, name="healthy", use_store=True)
        assert healthy.counters.ric_remote_hits == 2

        for daemon in fleet:
            if str(daemon.socket_path) == victim:
                kill_shard(daemon)
        after = engine.run(WORKLOAD, name="after-kill", use_store=True)
        assert after.console_output == healthy.console_output
        assert after.counters.ric_remote_failovers >= 1
        store.close()

    def test_publish_with_dead_shard_still_replicates(self, fleet, tmp_path):
        endpoints = [str(d.socket_path) for d in fleet]
        victim = primary_of(endpoints, "lib.jsl", LIB_SOURCE)
        for daemon in fleet:
            if str(daemon.socket_path) == victim:
                kill_shard(daemon)
        # Publishing with the primary dead: the replica still takes it.
        warm_fleet(endpoints, tmp_path)
        profile, stats = reuse_run(endpoints, tmp_path, "read-back")
        assert profile.counters.ric_remote_hits == 2


class TestPartitionAndSlowShard:
    @pytest.fixture
    def proxied_fleet(self, fleet, tmp_path):
        """Each shard behind its own pass-through fault proxy."""
        proxies = []
        for i, daemon in enumerate(fleet):
            proxy = FlakySocketProxy(
                tmp_path / f"proxy{i}.sock",
                daemon.socket_path,
                fault=None,
                probability=1.0,
                slow_delay_s=1.0,
            )
            proxy.start()
            proxies.append(proxy)
        yield proxies
        for proxy in proxies:
            proxy.stop()

    @pytest.mark.parametrize("fault", ["partition", "slow"])
    def test_single_shard_fault_is_invisible_outside_remote_counters(
        self, proxied_fleet, tmp_path, fault
    ):
        endpoints = [proxy.endpoint for proxy in proxied_fleet]
        warm_fleet(endpoints, tmp_path)
        baseline, _ = reuse_run(endpoints, tmp_path, "baseline")
        assert baseline.counters.ric_remote_hits == 2

        # Degrade the primary owner of lib.jsl mid-fleet: every request
        # through its proxy now black-holes (partition) or stalls past
        # the client timeout (slow).
        victim = primary_of(endpoints, "lib.jsl", LIB_SOURCE)
        for proxy in proxied_fleet:
            if proxy.endpoint == victim:
                proxy.set_fault(fault)

        degraded, stats = reuse_run(endpoints, tmp_path, fault)
        assert degraded.console_output == baseline.console_output
        assert non_remote_counters(degraded) == non_remote_counters(baseline)
        assert degraded.counters.ric_remote_hits == 2  # replica served
        assert degraded.counters.ric_remote_failovers >= 1

    def test_fault_cleared_restores_primary_service(
        self, proxied_fleet, tmp_path
    ):
        endpoints = [proxy.endpoint for proxy in proxied_fleet]
        warm_fleet(endpoints, tmp_path)
        victim = primary_of(endpoints, "lib.jsl", LIB_SOURCE)
        chosen = next(p for p in proxied_fleet if p.endpoint == victim)
        chosen.set_fault("partition")
        degraded, stats = reuse_run(endpoints, tmp_path, "partitioned")
        assert stats["failovers"] >= 1
        chosen.clear_fault()
        healed, stats = reuse_run(endpoints, tmp_path, "healed")
        assert stats["failovers"] == 0
        assert healed.console_output == degraded.console_output


class TestEpochWall:
    def test_bump_epoch_cli_leaves_no_pre_epoch_record_anywhere(
        self, fleet, tmp_path
    ):
        from repro.harness.run_cli import main

        endpoints = [str(d.socket_path) for d in fleet]
        warm_fleet(endpoints, tmp_path)
        assert any(len(d.cache) for d in fleet)

        # Exercise the CLI surface, including repeat + comma-separated
        # --remote-store flags.
        assert (
            main(
                [
                    "--remote-store",
                    endpoints[0],
                    "--remote-store",
                    f"{endpoints[1]},{endpoints[2]}",
                    "--bump-epoch",
                ]
            )
            == 0
        )
        for daemon in fleet:
            assert daemon.epoch == 1
            assert len(daemon.cache) == 0
            assert not list(daemon.store.directory.glob("*.icrecord.json"))

        # No shard or replica serves anything pre-epoch; a fresh reuse
        # run is effectively cold against the fleet.
        profile, stats = reuse_run(endpoints, tmp_path, "post-bump")
        assert profile.counters.ric_remote_hits == 0
        assert profile.counters.ric_remote_misses == 2

    def test_partitioned_shard_cannot_resurrect_after_bump(
        self, fleet, tmp_path
    ):
        """A shard that misses the EVICT_EPOCH broadcast (partitioned)
        self-invalidates via gossip on first contact — its pre-epoch
        replica copies are never served to an epoch-aware client."""
        endpoints = [str(d.socket_path) for d in fleet]
        warm_fleet(endpoints, tmp_path)
        laggard = fleet[2]

        # Partition shard 2 for the duration of the bump by severing its
        # transport: kill it, bump the survivors, then "heal" the
        # partition by restarting it on the same socket + directory.
        kill_shard(laggard)
        store = fleet_store(endpoints, tmp_path, "admin")
        assert store.bump_epoch() == 1  # two shards acknowledged
        # The partial broadcast is reported, not silent: the operator is
        # told which shards to re-bump when they rejoin.
        assert store.last_bump_missed == [str(laggard.socket_path)]
        store.close()

        healed = RecordCacheDaemon(
            laggard.socket_path, directory=laggard.store.directory
        )
        healed.start()
        try:
            # Its disk survived the partition, so it rejoins at epoch 0
            # with pre-bump records intact — the dangerous state.
            assert healed.epoch == 0

            # An epoch-aware client (its clock learns 1 from any healthy
            # shard) never receives a pre-epoch record from the laggard:
            # gossip invalidates it on first contact.
            reader = fleet_store(endpoints, tmp_path, "reader")
            for client in reader.clients.values():
                client.remote_stat()  # gossip: clock -> 1
            assert reader.epoch_clock.value == 1
            for filename, source in WORKLOAD:
                assert reader.get(filename, source) is None
            snapshot = reader.stats_snapshot()
            assert snapshot["hits"] == 0

            # Force first contact with the laggard itself (routing may
            # not have touched it above): its pre-bump copies must come
            # back as miss/stale, never as a hit, and that very exchange
            # heals it.
            laggard_client = reader.clients[str(laggard.socket_path)]
            for filename, source in WORKLOAD:
                outcome, record = laggard_client.remote_get(filename, source)
                assert outcome in ("miss", "stale")
                assert record is None
            assert healed.epoch == 1  # healed by gossip
            assert len(healed.cache) == 0
            reader.close()
        finally:
            healed.stop()
