"""Ablation tests: the design-choice variations DESIGN.md §6 indexes.

Covers: linking-only (no handler reuse), no-linking, naive (unvalidated)
persistence, global-IC inclusion, and the snapshot baseline from §9.
"""

from repro.baselines.snapshot import SnapshotBaseline
from repro.core.config import RICConfig
from repro.core.engine import Engine
from repro.workloads import WORKLOADS

WORKLOAD = WORKLOADS["underscorelike"].scripts()


def protocol(config: RICConfig, scripts=None, seed=11):
    engine = Engine(config=config, seed=seed)
    scripts = scripts or WORKLOAD
    engine.run(scripts, name="ablate")
    record = engine.extract_icrecord()
    conventional = engine.run(scripts, name="ablate")
    ric = engine.run(scripts, name="ablate", icrecord=record)
    return conventional, ric


class TestHandlerReuseAblation:
    def test_linking_without_handler_reuse_still_averts_misses(self):
        conventional, ric = protocol(RICConfig(enable_handler_reuse=False))
        assert ric.counters.ic_misses < conventional.counters.ic_misses

    def test_but_pays_handler_generation_again(self):
        _, full = protocol(RICConfig())
        _, no_reuse = protocol(RICConfig(enable_handler_reuse=False))
        # Same preloads, but each preload pays HANDLER_GENERATE again, so the
        # ric instruction category must be strictly larger.
        assert (
            no_reuse.counters.instructions["ric"]
            > full.counters.instructions["ric"]
        )

    def test_full_design_beats_linking_only(self):
        _, full = protocol(RICConfig())
        _, no_reuse = protocol(RICConfig(enable_handler_reuse=False))
        assert full.total_instructions < no_reuse.total_instructions


class TestLinkingAblation:
    def test_without_linking_nothing_is_preloaded(self):
        conventional, ric = protocol(RICConfig(enable_linking=False))
        assert ric.counters.ric_preloads == 0
        assert ric.counters.ic_hits_on_preloaded == 0

    def test_without_linking_no_improvement(self):
        conventional, ric = protocol(RICConfig(enable_linking=False))
        assert ric.counters.ic_misses >= conventional.counters.ic_misses


class TestNaiveValidationAblation:
    """validate=False trusts hidden-class creation order — unsound."""

    def test_naive_mode_works_when_execution_is_identical(self):
        config = RICConfig(validate=False)
        conventional, ric = protocol(config)
        assert ric.console_output == conventional.console_output
        assert ric.counters.ic_misses < conventional.counters.ic_misses

    @staticmethod
    def _divergent_scripts(branch):
        shared = """
        var o = {};
        if (BRANCH) o.x = 1;
        o.y = 2;
        console.log(o.y);
        """
        return [
            ("config.jsl", f"var BRANCH = {'true' if branch else 'false'};"),
            ("s.jsl", shared),
        ]

    def test_validation_catches_divergence_naive_does_not(self):
        # Validated RIC: runtime control-flow divergence detected.
        engine = Engine(seed=2)
        engine.run(self._divergent_scripts(False), name="a")
        record = engine.extract_icrecord()
        validated = engine.run(
            self._divergent_scripts(True), name="b", icrecord=record
        )
        assert validated.counters.ric_divergences >= 1

        # Naive mode trusts creation order and never notices.
        naive_engine = Engine(config=RICConfig(validate=False), seed=2)
        naive_engine.run(self._divergent_scripts(False), name="a")
        naive_record = naive_engine.extract_icrecord()
        naive = naive_engine.run(
            self._divergent_scripts(True), name="b", icrecord=naive_record
        )
        assert naive.counters.ric_divergences == 0  # it can't even notice

    @staticmethod
    def _order_scripts(flag):
        shared = """
        function build(flag) {
          var o = {};
          if (flag) { o.a = "A"; o.b = "B"; } else { o.b = "B"; o.a = "A"; }
          return o;
        }
        var o = build(COND);
        function readA(x) { return x.a; }
        console.log(readA(o));
        """
        return [
            ("config.jsl", f"var COND = {'true' if flag else 'false'};"),
            ("s.jsl", shared),
        ]

    def test_naive_mode_can_preload_wrong_offsets(self):
        """The concrete unsoundness: same site count, different property
        order -> a preloaded load_field reads the wrong slot."""
        naive_engine = Engine(config=RICConfig(validate=False), seed=3)
        naive_engine.run(self._order_scripts(True), name="a")
        record = naive_engine.extract_icrecord()
        naive = naive_engine.run(self._order_scripts(False), name="b", icrecord=record)

        validated_engine = Engine(seed=3)
        validated_engine.run(self._order_scripts(True), name="a")
        vrecord = validated_engine.extract_icrecord()
        validated = validated_engine.run(
            self._order_scripts(False), name="b", icrecord=vrecord
        )

        assert validated.console_output == ["A"]  # always correct
        # Naive mode preloaded readA's site with offset 0 ("a" in the initial
        # run) for the creation-order-matched class whose offset 0 is "b".
        assert naive.console_output == ["B"], (
            "expected the naive scheme to expose its unsoundness"
        )


class TestGlobalICAblation:
    def test_including_globals_adds_toast_entries(self):
        source = "var a = 1; var b = 2; var c = a + b; console.log(c);"
        excluded_engine = Engine(seed=4)
        excluded_engine.run(source, name="g")
        excluded = excluded_engine.extract_icrecord()

        included_engine = Engine(config=RICConfig(include_global_ics=True), seed=4)
        included_engine.run(source, name="g")
        included = included_engine.extract_icrecord()

        assert "builtin:global" in included.toast
        assert "builtin:global" not in excluded.toast
        assert included.stats()["toast_entries"] > excluded.stats()["toast_entries"]


class TestSnapshotBaseline:
    def test_snapshot_restores_identical_state_for_deterministic_init(self):
        engine = Engine(seed=6)
        scripts = [("lib.jsl", "var total = 1 + 2; console.log('init', total);")]
        engine.run(scripts, name="lib")
        snapshot = SnapshotBaseline.capture(engine, scripts)
        restored = snapshot.restore()
        assert restored.console_output == ["init 3"]
        assert restored.globals["total"] == 3.0

    def test_snapshot_is_application_specific(self):
        engine = Engine(seed=6)
        scripts_a = [("a.jsl", "var x = 1;")]
        scripts_b = [("a.jsl", "var x = 1;"), ("b.jsl", "var y = 2;")]
        engine.run(scripts_a, name="a")
        snapshot = SnapshotBaseline.capture(engine, scripts_a)
        # A second application adding one script cannot reuse the snapshot —
        # unlike an ICRecord, which applies per-script (see test_ric).
        assert SnapshotBaseline.matches(snapshot, scripts_a)
        assert not SnapshotBaseline.matches(snapshot, scripts_b)

    def test_snapshot_freezes_nondeterministic_values_ric_does_not(self):
        scripts = [("t.jsl", "var bootTime = Date.now(); console.log(bootTime);")]
        engine = Engine(seed=6)
        engine.run(scripts, name="t", time_source=lambda: 1.0)
        snapshot = SnapshotBaseline.capture(engine, scripts)
        record = engine.extract_icrecord()

        # "Later" (time has advanced): snapshot restore yields the stale
        # value; a RIC reuse run re-executes and observes the fresh clock.
        restored = snapshot.restore()
        assert restored.globals["bootTime"] == 1000.0

        ric = engine.run(scripts, name="t", icrecord=record, time_source=lambda: 2.0)
        assert ric.console_output == ["2000"]

    def test_snapshot_serializes_object_graphs(self):
        engine = Engine(seed=6)
        scripts = [
            (
                "g.jsl",
                "var cfg = {name: 'app', flags: [true, null], nested: {n: 1}};"
                "function helper() {} var fn = helper;",
            )
        ]
        engine.run(scripts, name="g")
        snapshot = SnapshotBaseline.capture(engine, scripts)
        restored = snapshot.restore()
        cfg = restored.globals["cfg"]["<object>"]
        assert cfg["name"] == "app"
        assert cfg["flags"] == [True, None]
        assert cfg["nested"] == {"<object>": {"n": 1.0}}
        assert restored.globals["fn"] == {"<function>": "helper"}

    def test_snapshot_handles_cycles(self):
        engine = Engine(seed=6)
        scripts = [("c.jsl", "var a = {}; a.self = a;")]
        engine.run(scripts, name="c")
        snapshot = SnapshotBaseline.capture(engine, scripts)
        restored = snapshot.restore()
        assert restored.globals["a"]["<object>"]["self"] == {"<cycle>": True}


class TestGlobalICOrderSensitivity:
    """Why the paper disables RIC for global objects (§6): the global
    object's hidden-class chain depends on script load order, so global IC
    information only transfers between *identically ordered* pages."""

    def test_same_order_reuse_benefits_from_global_ics(self):
        from repro.workloads import website_a

        engine = Engine(config=RICConfig(include_global_ics=True), seed=12)
        engine.run(website_a(), name="site-a")
        record = engine.extract_icrecord()
        ric = engine.run(website_a(), name="site-a", icrecord=record)

        baseline_engine = Engine(seed=12)
        baseline_engine.run(website_a(), name="site-a")
        baseline_record = baseline_engine.extract_icrecord()
        baseline = baseline_engine.run(
            website_a(), name="site-a", icrecord=baseline_record
        )
        # With identical load order, including globals can only help (or tie).
        assert ric.counters.ric_validations >= baseline.counters.ric_validations
        assert ric.console_output == baseline.console_output

    def test_cross_order_reuse_with_globals_diverges_but_stays_correct(self):
        from repro.workloads import website_a, website_b

        engine = Engine(config=RICConfig(include_global_ics=True), seed=12)
        engine.run(website_a(), name="site-a")
        record = engine.extract_icrecord()
        conventional = engine.run(website_b(), name="site-b")
        ric = engine.run(website_b(), name="site-b", icrecord=record)
        # The global chain was built in a different order: its transitions
        # cannot validate, so divergences are reported — but validation
        # keeps everything correct, and per-library reuse still wins.
        assert ric.counters.ric_divergences > 0
        assert sorted(ric.console_output) == sorted(conventional.console_output)
        assert ric.counters.ic_misses < conventional.counters.ic_misses
