"""Golden-file disassembly tests: the bytecode surface is load-bearing.

Persisted ICRecords and code caches key off site layouts and opcode
identities, so a silently renumbered, dropped, or re-emitted opcode is a
compatibility break even when every behavioural test still passes.  Two
golden walls catch that:

* ``tests/golden/opcodes.txt`` pins the full ``NAME=value`` opcode
  registry (disassembly shows names, so only this file catches pure
  renumbering), and
* ``tests/golden/disasm/*.txt`` pins the recursive disassembly of each
  program in ``examples/jsl/`` (catches codegen drift: reordered emits,
  changed operands, dropped instructions).

To bless an *intentional* change, regenerate with::

    RIC_REGOLD=1 PYTHONPATH=src python -m pytest tests/test_disasm_golden.py

and review the golden diff like any other code change.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bytecode.compiler import compile_source
from repro.bytecode.disasm import disassemble
from repro.bytecode.opcodes import Op
from repro.bytecode.optimizer import optimize_code

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples" / "jsl"
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
REGOLD = os.environ.get("RIC_REGOLD") == "1"

EXAMPLE_NAMES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.jsl"))


def check_golden(golden_path: Path, actual: str) -> None:
    if REGOLD:
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(actual)
        return
    assert golden_path.exists(), (
        f"missing golden {golden_path}; run with RIC_REGOLD=1 to create it"
    )
    expected = golden_path.read_text()
    assert actual == expected, (
        f"{golden_path.name} drifted from the golden; if intentional, "
        "regenerate with RIC_REGOLD=1 and review the diff"
    )


def test_examples_exist():
    assert len(EXAMPLE_NAMES) >= 4, "the examples/jsl corpus shrank"


def test_opcode_registry_golden():
    actual = "".join(f"{op.name}={int(op)}\n" for op in Op)
    check_golden(GOLDEN_DIR / "opcodes.txt", actual)


@pytest.mark.parametrize("name", EXAMPLE_NAMES)
def test_disassembly_golden(name):
    source = (EXAMPLES_DIR / f"{name}.jsl").read_text()
    code = compile_source(source, f"{name}.jsl")
    # Goldens pin the *optimized* stream — the one the VM executes and
    # the code cache persists — so fused superinstructions are covered.
    optimize_code(code)
    actual = disassemble(code, recursive=True)
    if not actual.endswith("\n"):
        actual += "\n"
    check_golden(GOLDEN_DIR / "disasm" / f"{name}.txt", actual)


@pytest.mark.parametrize("name", EXAMPLE_NAMES)
def test_examples_actually_run(name):
    """The golden corpus must stay executable, not just compilable."""
    from repro.core.engine import Engine

    source = (EXAMPLES_DIR / f"{name}.jsl").read_text()
    profile = Engine(seed=5).run(source, name=name)
    assert profile.console_output, f"{name}.jsl produced no output"
