"""Unit tests for the jsl parser."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import JSLSyntaxError
from repro.lang.parser import parse


def first_stmt(source):
    return parse(source).body[0]


def expr_of(source):
    statement = first_stmt(source)
    assert isinstance(statement, ast.ExpressionStatement)
    return statement.expression


class TestLiterals:
    def test_number(self):
        assert isinstance(expr_of("1;"), ast.NumberLiteral)

    def test_string(self):
        node = expr_of("'s';")
        assert isinstance(node, ast.StringLiteral)
        assert node.value == "s"

    def test_booleans_null_undefined(self):
        assert isinstance(expr_of("true;"), ast.BooleanLiteral)
        assert isinstance(expr_of("false;"), ast.BooleanLiteral)
        assert isinstance(expr_of("null;"), ast.NullLiteral)
        assert isinstance(expr_of("undefined;"), ast.UndefinedLiteral)

    def test_array_literal(self):
        node = expr_of("[1, 2, 3];")
        assert isinstance(node, ast.ArrayLiteral)
        assert len(node.elements) == 3

    def test_array_trailing_comma(self):
        assert len(expr_of("[1, 2,];").elements) == 2

    def test_object_literal_keys(self):
        node = expr_of("({a: 1, 'b c': 2, 3: 4, new: 5});")
        assert [p.key for p in node.properties] == ["a", "b c", "3", "new"]

    def test_object_trailing_comma(self):
        assert len(expr_of("({a: 1,});").properties) == 1

    def test_nested_object(self):
        node = expr_of("({a: {b: 1}});")
        assert isinstance(node.properties[0].value, ast.ObjectLiteral)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        node = expr_of("1 + 2 * 3;")
        assert isinstance(node, ast.Binary) and node.op == "+"
        assert isinstance(node.right, ast.Binary) and node.right.op == "*"

    def test_parentheses_override(self):
        node = expr_of("(1 + 2) * 3;")
        assert node.op == "*"
        assert isinstance(node.left, ast.Binary) and node.left.op == "+"

    def test_left_associativity(self):
        node = expr_of("1 - 2 - 3;")
        assert node.op == "-"
        assert isinstance(node.left, ast.Binary)

    def test_comparison_precedence(self):
        node = expr_of("a + 1 < b * 2;")
        assert node.op == "<"

    def test_logical_lower_than_comparison(self):
        node = expr_of("a < b && c > d;")
        assert isinstance(node, ast.Logical) and node.op == "&&"

    def test_or_lower_than_and(self):
        node = expr_of("a && b || c;")
        assert node.op == "||"

    def test_conditional(self):
        node = expr_of("a ? b : c;")
        assert isinstance(node, ast.Conditional)

    def test_nested_conditional(self):
        node = expr_of("a ? b : c ? d : e;")
        assert isinstance(node.alternate, ast.Conditional)

    def test_assignment_right_associative(self):
        node = expr_of("a = b = 1;")
        assert isinstance(node, ast.Assignment)
        assert isinstance(node.value, ast.Assignment)

    def test_compound_assignment(self):
        node = expr_of("a += 2;")
        assert node.op == "+"

    def test_assignment_to_literal_raises(self):
        with pytest.raises(JSLSyntaxError):
            parse("1 = 2;")

    def test_member_access_chain(self):
        node = expr_of("a.b.c;")
        assert isinstance(node, ast.MemberAccess) and node.prop == "c"
        assert isinstance(node.obj, ast.MemberAccess) and node.obj.prop == "b"

    def test_keyword_as_property(self):
        node = expr_of("a.delete;")
        assert node.prop == "delete"

    def test_index_access(self):
        node = expr_of("a[b + 1];")
        assert isinstance(node, ast.IndexAccess)

    def test_call_with_args(self):
        node = expr_of("f(1, x, 'y');")
        assert isinstance(node, ast.Call) and len(node.args) == 3

    def test_method_call(self):
        node = expr_of("a.b(1);")
        assert isinstance(node, ast.Call)
        assert isinstance(node.callee, ast.MemberAccess)

    def test_new_with_args(self):
        node = expr_of("new Point(1, 2);")
        assert isinstance(node, ast.New) and len(node.args) == 2

    def test_new_member_callee(self):
        node = expr_of("new ns.Point(1);")
        assert isinstance(node.callee, ast.MemberAccess)

    def test_new_result_member_access(self):
        node = expr_of("new Point(1).x;")
        assert isinstance(node, ast.MemberAccess)
        assert isinstance(node.obj, ast.New)

    def test_typeof(self):
        assert isinstance(expr_of("typeof x;"), ast.TypeOf)

    def test_delete_member(self):
        assert isinstance(expr_of("delete a.b;"), ast.Delete)

    def test_delete_non_member_raises(self):
        with pytest.raises(JSLSyntaxError):
            parse("delete x;")

    def test_prefix_and_postfix_update(self):
        pre = expr_of("++x;")
        post = expr_of("x++;")
        assert pre.prefix and not post.prefix

    def test_update_requires_target(self):
        with pytest.raises(JSLSyntaxError):
            parse("++1;")

    def test_unary_chain(self):
        node = expr_of("!!x;")
        assert isinstance(node, ast.Unary) and isinstance(node.operand, ast.Unary)

    def test_comma_expression(self):
        node = expr_of("a, b, c;")
        assert isinstance(node, ast.Sequence) and len(node.expressions) == 3

    def test_function_expression(self):
        node = expr_of("(function named(a, b) { return a; });")
        assert isinstance(node, ast.FunctionExpression)
        assert node.name == "named" and node.params == ["a", "b"]

    def test_iife(self):
        node = expr_of("(function () { return 1; })();")
        assert isinstance(node, ast.Call)
        assert isinstance(node.callee, ast.FunctionExpression)

    def test_in_operator(self):
        node = expr_of("('x' in obj);")
        assert isinstance(node, ast.Binary) and node.op == "in"

    def test_instanceof_operator(self):
        assert expr_of("a instanceof B;").op == "instanceof"


class TestStatements:
    def test_var_multi_declarators(self):
        node = first_stmt("var a = 1, b, c = 3;")
        assert isinstance(node, ast.VariableDeclaration)
        assert [d.name for d in node.declarators] == ["a", "b", "c"]
        assert node.declarators[1].init is None

    def test_let_and_const(self):
        assert first_stmt("let x = 1;").kind == "let"
        assert first_stmt("const y = 2;").kind == "const"

    def test_function_declaration(self):
        node = first_stmt("function f(a) { return a; }")
        assert isinstance(node, ast.FunctionDeclaration) and node.name == "f"

    def test_if_else(self):
        node = first_stmt("if (a) b; else c;")
        assert isinstance(node, ast.If) and node.alternate is not None

    def test_dangling_else_binds_inner(self):
        node = first_stmt("if (a) if (b) c; else d;")
        assert node.alternate is None
        assert isinstance(node.consequent, ast.If)
        assert node.consequent.alternate is not None

    def test_while(self):
        assert isinstance(first_stmt("while (x) y;"), ast.While)

    def test_do_while(self):
        assert isinstance(first_stmt("do x; while (y);"), ast.DoWhile)

    def test_classic_for(self):
        node = first_stmt("for (var i = 0; i < 3; i++) {}")
        assert isinstance(node, ast.For)
        assert node.init is not None and node.test is not None

    def test_for_with_empty_clauses(self):
        node = first_stmt("for (;;) break;")
        assert node.init is None and node.test is None and node.update is None

    def test_for_in_with_var(self):
        node = first_stmt("for (var k in o) {}")
        assert isinstance(node, ast.ForIn) and node.declares

    def test_for_in_without_var(self):
        node = first_stmt("for (k in o) {}")
        assert isinstance(node, ast.ForIn) and not node.declares

    def test_return_value_and_bare(self):
        program = parse("function f() { return 1; } function g() { return; }")
        f_ret = program.body[0].body.statements[0]
        g_ret = program.body[1].body.statements[0]
        assert f_ret.value is not None and g_ret.value is None

    def test_throw(self):
        assert isinstance(first_stmt("throw 'x';"), ast.Throw)

    def test_try_catch(self):
        node = first_stmt("try { a; } catch (e) { b; }")
        assert isinstance(node, ast.Try) and node.catch_param == "e"

    def test_try_finally(self):
        node = first_stmt("try { a; } finally { b; }")
        assert node.catch_block is None and node.finally_block is not None

    def test_try_catch_finally(self):
        node = first_stmt("try { a; } catch (e) { b; } finally { c; }")
        assert node.catch_block is not None and node.finally_block is not None

    def test_try_alone_raises(self):
        with pytest.raises(JSLSyntaxError):
            parse("try { a; }")

    def test_switch(self):
        node = first_stmt("switch (x) { case 1: a; break; default: b; }")
        assert isinstance(node, ast.Switch) and len(node.cases) == 2
        assert node.cases[1].test is None

    def test_duplicate_default_raises(self):
        with pytest.raises(JSLSyntaxError):
            parse("switch (x) { default: a; default: b; }")

    def test_empty_statement(self):
        node = first_stmt(";")
        assert isinstance(node, ast.Block) and not node.statements

    def test_asi_lite_before_brace(self):
        # Statement terminator may be omitted before '}' and at EOF.
        program = parse("function f() { return 1 }")
        assert isinstance(program.body[0], ast.FunctionDeclaration)

    def test_missing_semicolon_raises(self):
        with pytest.raises(JSLSyntaxError):
            parse("var a = 1 var b = 2;")

    def test_unterminated_block_raises(self):
        with pytest.raises(JSLSyntaxError):
            parse("function f() { var a = 1;")

    def test_positions_on_member_sites(self):
        node = expr_of("obj.prop;")
        assert node.position.column == 5  # the property token's column
