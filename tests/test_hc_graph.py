"""Tests for the hidden-class transition-graph analysis."""

import networkx as nx

from repro.core.engine import Engine
from repro.stats.hc_graph import (
    build_transition_graph,
    chain_of,
    to_dot,
    transition_stats,
)
from repro.workloads import WORKLOADS


def run_and_runtime(source, seed=5):
    engine = Engine(seed=seed)
    engine.run(source, name="g")
    return engine.last_run.runtime


class TestGraphConstruction:
    def test_forest_is_acyclic(self):
        runtime = run_and_runtime("var o = {}; o.a = 1; o.b = 2; var p = {}; p.z = 0;")
        graph = build_transition_graph(runtime)
        assert nx.is_directed_acyclic_graph(graph)

    def test_edges_carry_property_labels(self):
        runtime = run_and_runtime("var o = {}; o.a = 1; o.b = 2;")
        graph = build_transition_graph(runtime)
        labels = {data["property"] for _, _, data in graph.edges(data=True)}
        assert {"a", "b"} <= labels

    def test_shared_chain_single_path(self):
        runtime = run_and_runtime(
            """
            function make() { var o = {}; o.x = 1; o.y = 2; return o; }
            var a = make();
            var b = make();
            """
        )
        graph = build_transition_graph(runtime)
        x_edges = [
            (s, t) for s, t, d in graph.edges(data=True) if d["property"] == "x"
        ]
        assert len(x_edges) == 1  # both objects share one transition chain

    def test_diverging_chains_branch(self):
        runtime = run_and_runtime(
            """
            var a = {}; a.x = 1;
            var b = {}; b.y = 1;
            """
        )
        stats = transition_stats(runtime)
        assert stats.max_branching >= 2  # the empty-object class fans out

    def test_node_attributes(self):
        runtime = run_and_runtime("var o = {}; o.k = 1;")
        graph = build_transition_graph(runtime)
        kinds = {data["kind"] for _, data in graph.nodes(data=True)}
        assert "builtin" in kinds and "site" in kinds


class TestStats:
    def test_counts_match_registry(self):
        runtime = run_and_runtime("var o = {}; o.a = 1; o.b = 2;")
        stats = transition_stats(runtime)
        assert stats.classes == len(runtime.hidden_classes.all_classes)
        assert stats.transitions == sum(
            len(hc.transitions) for hc in runtime.hidden_classes.all_classes
        )

    def test_chain_depth_reflects_property_count(self):
        source = "var o = {};" + "".join(f"o.p{i} = {i};" for i in range(10))
        runtime = run_and_runtime(source)
        stats = transition_stats(runtime)
        assert stats.max_chain_depth >= 10

    def test_empty_object_family_grows_with_literals(self):
        small = transition_stats(run_and_runtime("var a = {x: 1};"))
        large = transition_stats(
            run_and_runtime("var a = {x: 1}; var b = {y: 1, z: 2}; var c = {w: 1};")
        )
        assert large.empty_object_family > small.empty_object_family

    def test_as_dict_keys(self):
        stats = transition_stats(run_and_runtime("var o = {};"))
        assert set(stats.as_dict()) == {
            "classes",
            "roots",
            "transitions",
            "max_chain_depth",
            "max_branching",
            "empty_object_family",
        }

    def test_workload_signature_react_vs_underscore(self):
        """React-like builds many more shapes than Underscore-like — the
        Table 1 hidden-class ordering, visible structurally."""
        engine = Engine(seed=5)
        engine.run(WORKLOADS["reactlike"].scripts(), name="react")
        react = transition_stats(engine.last_run.runtime)
        engine.run(WORKLOADS["underscorelike"].scripts(), name="underscore")
        underscore = transition_stats(engine.last_run.runtime)
        assert react.classes > underscore.classes


class TestChainAndDot:
    def test_chain_of_walks_to_root(self):
        runtime = run_and_runtime("var o = {}; o.a = 1; o.b = 2;")
        final_hc = None
        for hc in runtime.hidden_classes.all_classes:
            if hc.transition_property == "b":
                final_hc = hc
        assert final_hc is not None
        chain = chain_of(final_hc)
        assert [hc.transition_property for hc in chain] == [None, "a", "b"]
        assert chain[0].creation_key == "builtin:EmptyObject"

    def test_dot_output(self):
        runtime = run_and_runtime("var o = {}; o.a = 1;")
        dot = to_dot(runtime)
        assert dot.startswith("digraph")
        assert '"a"' in dot and "builtin:EmptyObject" in dot
