"""Tests for per-script ICRecords and the RecordStore (paper §9's claim
that RIC information is per-file and shareable across applications)."""

from pathlib import Path

import pytest

from repro.core.engine import Engine
from repro.ric.store import (
    RecordStore,
    extract_per_script_records,
    filename_of_creation_key,
)

LIB_SOURCE = """
var lib = (function () {
  function Widget(name) { this.name = name; this.visible = true; }
  Widget.prototype.describe = function () { return this.name; };
  var registry = {};
  function register(name) {
    var w = new Widget(name);
    registry[name] = w;
    return w;
  }
  register("alpha");
  register("beta");
  var total = 0;
  for (var k in registry) {
    var widget = registry[k];
    if (widget.visible) { total += widget.name.length; }
  }
  console.log("lib ready:", total === 9);
  return { register: register, count: total };
})();
"""

APP_A = [("lib.jsl", LIB_SOURCE), ("app_a.jsl", "var a = lib.count; console.log('a', a);")]
APP_B = [("app_b.jsl", "var b = 1; console.log('b', b);"), ("lib.jsl", LIB_SOURCE)]


class TestCreationKeyParsing:
    def test_site_keys(self):
        assert filename_of_creation_key("lib.jsl:10:3:named_store") == "lib.jsl"

    def test_ctor_keys(self):
        assert filename_of_creation_key("ctor:lib.jsl:2:3#Widget:0") == "lib.jsl"

    def test_builtin_and_native_keys(self):
        assert filename_of_creation_key("builtin:EmptyObject") is None
        assert filename_of_creation_key("native:Object.assign") is None


class TestPerScriptExtraction:
    def test_one_record_per_script(self, engine):
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        assert set(records) == {"lib.jsl", "app_a.jsl"}

    def test_records_are_self_contained(self, engine):
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        lib = records["lib.jsl"]
        # Local HCIDs are dense 0..n-1.
        assert [row.hcid for row in lib.hcvt] == list(range(len(lib.hcvt)))
        # Every TOAST pair references valid local ids.
        for pairs in lib.toast.values():
            for pair in pairs:
                assert pair.outgoing_hcid < len(lib.hcvt)
                if pair.incoming_hcid is not None:
                    assert pair.incoming_hcid < len(lib.hcvt)
        # Every dependent handler id is valid.
        for row in lib.hcvt:
            for dependent in row.dependents:
                assert dependent.handler_id < len(lib.handlers)

    def test_dependents_stay_within_their_file(self, engine):
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        for filename, record in records.items():
            for row in record.hcvt:
                for dependent in row.dependents:
                    assert dependent.site_key.startswith(filename)

    def test_builtin_entries_present_in_every_record(self, engine):
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        for record in records.values():
            assert "builtin:EmptyObject" in record.toast

    def test_requires_a_run(self, engine):
        with pytest.raises(RuntimeError):
            engine.extract_per_script_records()


class TestCrossApplicationReuse:
    """The §9 scenario: lib.jsl's record, extracted while running app A,
    accelerates a *different* application that loads the same library."""

    def test_lib_record_transfers_to_other_app(self):
        engine = Engine(seed=17)
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        lib_record = records["lib.jsl"]

        conventional = engine.run(APP_B, name="app-b")
        ric = engine.run(APP_B, name="app-b", icrecord=[lib_record])
        assert ric.console_output == conventional.console_output
        assert ric.counters.ic_misses < conventional.counters.ic_misses
        assert ric.counters.ric_preloads > 0

    def test_multiple_records_compose(self):
        engine = Engine(seed=17)
        engine.run(APP_A, name="app-a")
        records = list(engine.extract_per_script_records().values())
        ric = engine.run(APP_A, name="app-a", icrecord=records)
        conventional = engine.run(APP_A, name="app-a")
        assert ric.counters.ic_misses < conventional.counters.ic_misses

    def test_composition_roughly_matches_monolithic_record(self):
        engine = Engine(seed=17)
        engine.run(APP_A, name="app-a")
        monolithic = engine.extract_icrecord()
        per_script = list(engine.extract_per_script_records().values())

        ric_mono = engine.run(APP_A, name="app-a", icrecord=monolithic)
        ric_multi = engine.run(APP_A, name="app-a", icrecord=per_script)
        # Per-script records drop cross-file links, so they avert at most as
        # many misses — but must still be clearly better than nothing.
        conventional = engine.run(APP_A, name="app-a")
        assert ric_mono.counters.ic_misses <= ric_multi.counters.ic_misses
        assert ric_multi.counters.ic_misses < conventional.counters.ic_misses


class TestRecordStore:
    def test_put_get_round_trip(self, engine):
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        store = RecordStore()
        store.put("lib.jsl", LIB_SOURCE, records["lib.jsl"])
        assert store.get("lib.jsl", LIB_SOURCE) is records["lib.jsl"]
        assert len(store) == 1

    def test_source_change_misses(self, engine):
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        store = RecordStore()
        store.put("lib.jsl", LIB_SOURCE, records["lib.jsl"])
        assert store.get("lib.jsl", LIB_SOURCE + "\n// v2") is None

    def test_records_for_scripts(self, engine):
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        store = RecordStore()
        store.put("lib.jsl", LIB_SOURCE, records["lib.jsl"])
        assert len(store.records_for(APP_B)) == 1  # only lib.jsl is known

    def test_directory_persistence(self, engine, tmp_path):
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        store = RecordStore(directory=tmp_path)
        store.put("lib.jsl", LIB_SOURCE, records["lib.jsl"])

        fresh = RecordStore(directory=tmp_path)  # simulate a new process
        loaded = fresh.get("lib.jsl", LIB_SOURCE)
        assert loaded is not None
        assert loaded.stats()["dependent_links"] == records["lib.jsl"].stats()[
            "dependent_links"
        ]

    def test_corrupt_directory_entries_ignored(self, tmp_path):
        (tmp_path / "junk.icrecord.json").write_text("{ nope")
        store = RecordStore(directory=tmp_path)
        assert len(store) == 0

    def test_corrupt_entries_are_counted_and_quarantined(self, tmp_path):
        (tmp_path / "junk.icrecord.json").write_text("{ nope")
        store = RecordStore(directory=tmp_path)
        assert len(store.load_errors) == 1
        assert store.load_errors[0][0] == "junk.icrecord.json"
        # The bad entry is moved aside, not left to fail again.
        assert not (tmp_path / "junk.icrecord.json").exists()
        assert (tmp_path / "junk.icrecord.json.corrupt").exists()

    def test_quarantine_can_be_disabled(self, tmp_path):
        (tmp_path / "junk.icrecord.json").write_text("{ nope")
        store = RecordStore(directory=tmp_path, quarantine=False)
        assert len(store.load_errors) == 1
        assert (tmp_path / "junk.icrecord.json").exists()

    def test_quarantine_names_do_not_collide(self, tmp_path):
        (tmp_path / "junk.icrecord.json").write_text("{ nope")
        (tmp_path / "junk.icrecord.json.corrupt").write_text("older casualty")
        RecordStore(directory=tmp_path)
        assert (tmp_path / "junk.icrecord.json.corrupt.1").exists()

    def test_stale_format_version_is_quarantined(self, engine, tmp_path):
        """A valid v2-era file (no envelope) must be refused and moved."""
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        store = RecordStore(directory=tmp_path)
        store.put("lib.jsl", LIB_SOURCE, records["lib.jsl"])

        import json

        from repro.ric import record_to_json

        legacy = record_to_json(records["lib.jsl"])
        legacy["version"] = 2
        (tmp_path / "legacy.icrecord.json").write_text(
            json.dumps({"key": "lib.jsl:deadbeef", "record": legacy})
        )
        fresh = RecordStore(directory=tmp_path)
        assert len(fresh) == 1  # only the healthy entry
        assert len(fresh.load_errors) == 1
        assert (tmp_path / "legacy.icrecord.json.corrupt").exists()

    def test_load_errors_empty_on_healthy_directory(self, engine, tmp_path):
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        store = RecordStore(directory=tmp_path)
        store.put("lib.jsl", LIB_SOURCE, records["lib.jsl"])
        assert RecordStore(directory=tmp_path).load_errors == []

    def test_put_leaves_no_temp_droppings(self, engine, tmp_path):
        engine.run(APP_A, name="app-a")
        records = engine.extract_per_script_records()
        store = RecordStore(directory=tmp_path)
        for _ in range(5):
            store.put("lib.jsl", LIB_SOURCE, records["lib.jsl"])
        assert list(tmp_path.glob("*.tmp")) == []


class TestConcurrentAccess:
    """Atomic replace means a reader sees the old record or the new one,
    never a prefix — hammered here with racing writer/reader threads."""

    def test_writers_and_readers_never_observe_partial_records(
        self, engine, tmp_path
    ):
        import threading

        engine.run(APP_A, name="app-a")
        record = engine.extract_per_script_records()["lib.jsl"]
        stop = threading.Event()
        observed_errors: list = []

        def writer():
            store = RecordStore(directory=tmp_path)
            while not stop.is_set():
                store.put("lib.jsl", LIB_SOURCE, record)

        def reader():
            while not stop.is_set():
                fresh = RecordStore(directory=tmp_path, quarantine=False)
                observed_errors.extend(fresh.load_errors)
                loaded = fresh.get("lib.jsl", LIB_SOURCE)
                if loaded is not None:
                    assert loaded.stats() == record.stats()

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        import time

        time.sleep(1.0)
        stop.set()
        for thread in threads:
            thread.join()
        assert observed_errors == []

    def test_cross_process_round_trip(self, engine, tmp_path):
        """A second *process* writing the same directory composes with an
        in-process reader (the multi-engine deployment shape)."""
        import subprocess
        import sys
        import textwrap

        engine.run(APP_A, name="app-a")
        record = engine.extract_per_script_records()["lib.jsl"]
        store = RecordStore(directory=tmp_path)
        store.put("lib.jsl", LIB_SOURCE, record)

        script = textwrap.dedent(
            """
            import sys
            from repro.ric import RecordStore
            store = RecordStore(directory=sys.argv[1])
            assert store.load_errors == [], store.load_errors
            assert len(store) == 1
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        assert result.returncode == 0, result.stderr

    def test_end_to_end_browser_cache_shape(self, tmp_path):
        """First process: visit app A, persist per-script records.  Second
        process: visit app B, pick up lib.jsl's record from disk."""
        first = Engine(seed=23)
        first.run(APP_A, name="app-a")
        store = RecordStore(directory=tmp_path)
        per_script = first.extract_per_script_records()
        for filename, source in APP_A:
            if filename in per_script:
                store.put(filename, source, per_script[filename])

        second = Engine(seed=99)
        fresh_store = RecordStore(directory=tmp_path)
        available = fresh_store.records_for(APP_B)
        assert len(available) == 1
        conventional = second.run(APP_B, name="app-b")
        ric = second.run(APP_B, name="app-b", icrecord=available)
        assert ric.console_output == conventional.console_output
        assert ric.counters.ic_misses < conventional.counters.ic_misses


class TestSweepQuarantine:
    """Quarantine keeps casualties for post-mortem; the sweep bounds them."""

    @staticmethod
    def _plant_corrupt(tmp_path, name: str, age_s: float) -> Path:
        import os
        import time

        path = tmp_path / name
        path.write_text("{ damaged")
        stamp = time.time() - age_s
        os.utime(path, (stamp, stamp))
        return path

    def test_memory_store_has_nothing_to_sweep(self):
        assert RecordStore().sweep_quarantine(max_age_s=0.0) == {
            "swept": 0,
            "kept": 0,
        }

    def test_all_none_sweeps_nothing(self, tmp_path):
        self._plant_corrupt(tmp_path, "a.icrecord.json.corrupt", age_s=3600)
        store = RecordStore(directory=tmp_path)
        assert store.sweep_quarantine() == {"swept": 0, "kept": 1}

    def test_sweep_by_age(self, tmp_path):
        old = self._plant_corrupt(
            tmp_path, "old.icrecord.json.corrupt", age_s=3600
        )
        young = self._plant_corrupt(
            tmp_path, "young.icrecord.json.corrupt", age_s=1
        )
        store = RecordStore(directory=tmp_path)
        assert store.sweep_quarantine(max_age_s=60.0) == {"swept": 1, "kept": 1}
        assert not old.exists() and young.exists()
        assert store.status()["quarantine_swept"] == 1
        assert store.status()["quarantined"] == 1

    def test_sweep_by_count_keeps_newest(self, tmp_path):
        paths = [
            self._plant_corrupt(
                tmp_path, f"c{i}.icrecord.json.corrupt", age_s=100 - i
            )
            for i in range(5)
        ]
        store = RecordStore(directory=tmp_path)
        assert store.sweep_quarantine(max_count=2) == {"swept": 3, "kept": 2}
        # c0..c2 were oldest and died; c3, c4 survive.
        assert [p.exists() for p in paths] == [False, False, False, True, True]

    def test_age_and_count_compose(self, tmp_path):
        for i in range(4):
            self._plant_corrupt(
                tmp_path, f"c{i}.icrecord.json.corrupt", age_s=3600 * (i + 1)
            )
        store = RecordStore(directory=tmp_path)
        # Age kills the two oldest; count then trims the survivors to one.
        summary = store.sweep_quarantine(max_age_s=3 * 3600 + 1, max_count=1)
        assert summary == {"swept": 3, "kept": 1}

    def test_cli_sweep_flag(self, tmp_path, capsys):
        from repro.harness.run_cli import main

        store_dir = tmp_path / "store"
        store_dir.mkdir()
        self._plant_corrupt(
            store_dir, "dead.icrecord.json.corrupt", age_s=3600
        )
        assert (
            main(
                [
                    "--store-dir",
                    str(store_dir),
                    "--sweep-quarantine",
                    "--quarantine-max-age",
                    "60",
                ]
            )
            == 0
        )
        assert "removed 1" in capsys.readouterr().err
        assert not (store_dir / "dead.icrecord.json.corrupt").exists()

    def test_cli_sweep_requires_a_directory(self, capsys):
        from repro.harness.run_cli import EXIT_USAGE, main

        assert main(["--sweep-quarantine"]) == EXIT_USAGE


class TestSweepQuarantineConcurrency:
    """The sweep races real writers: publishes keep landing while several
    sweepers prune — nothing raises, every corpse dies exactly once, and
    live records are never collateral damage."""

    def test_sweep_under_concurrent_writers(self, tmp_path):
        import os
        import threading
        import time

        engine = Engine(seed=7)
        engine.run(APP_A, name="seed")
        record = engine.extract_per_script_records()["lib.jsl"]

        corpses = 12
        for i in range(corpses):
            path = tmp_path / f"dead{i}.icrecord.json.corrupt"
            path.write_text("{ damaged")
            stamp = time.time() - 3600
            os.utime(path, (stamp, stamp))

        store = RecordStore(directory=tmp_path)
        errors: list = []
        swept_counts: list = []
        start = threading.Barrier(6)

        def writer(n: int) -> None:
            try:
                start.wait()
                for i in range(20):
                    store.put(f"w{n}-{i}.jsl", f"var x = {i};", record)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        def sweeper() -> None:
            try:
                start.wait()
                for _ in range(10):
                    summary = store.sweep_quarantine(max_age_s=60.0)
                    swept_counts.append(summary["swept"])
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(3)]
        threads += [threading.Thread(target=sweeper) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        # Every corpse died exactly once, whoever got there first.
        assert sum(swept_counts) == corpses
        assert not list(tmp_path.glob("*.corrupt"))
        # The concurrently-written records all survived, readable.
        fresh = RecordStore(directory=tmp_path)
        assert fresh.get("w0-0.jsl", "var x = 0;") is not None
        assert len(fresh.load_errors) == 0
