"""Shared pytest fixtures and the hang backstop.

The governance suite deliberately runs *runaway* programs and expects
the budget layer to stop them; if that layer regresses, the failure
mode is a hung test, not a failing one.  ``pytest-timeout`` is not a
dependency of this repo, so the backstop is a conftest-level SIGALRM:
every test gets a generous wall-clock ceiling (``RIC_TEST_TIMEOUT``
seconds, default 120; tests marked ``slow`` get four times that) and
dies with a ``TimeoutError`` instead of wedging CI.
"""

import os
import signal
import threading

import pytest

from repro.core.engine import Engine
from repro.runtime.builtins import install_builtins
from repro.runtime.context import Runtime

_TEST_TIMEOUT_S = int(os.environ.get("RIC_TEST_TIMEOUT", "120"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield  # no alarm available here; run unguarded
        return
    limit = _TEST_TIMEOUT_S * (4 if item.get_closest_marker("slow") else 1)

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {limit}s conftest backstop (likely hang)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(limit)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def engine() -> Engine:
    return Engine(seed=123)


@pytest.fixture
def fresh_runtime() -> Runtime:
    runtime = Runtime(seed=7)
    install_builtins(runtime)
    return runtime
