"""Shared pytest fixtures."""

import pytest

from repro.core.engine import Engine
from repro.runtime.builtins import install_builtins
from repro.runtime.context import Runtime


@pytest.fixture
def engine() -> Engine:
    return Engine(seed=123)


@pytest.fixture
def fresh_runtime() -> Runtime:
    runtime = Runtime(seed=7)
    install_builtins(runtime)
    return runtime
