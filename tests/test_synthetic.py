"""Tests for the parameterized synthetic workload generator."""

import pytest

from repro.core.engine import Engine
from repro.workloads.synthetic import generate_library, generated_scripts


class TestGenerator:
    def test_generated_program_self_checks(self):
        engine = Engine(seed=2)
        profile = engine.run(generated_scripts(), name="synth")
        assert profile.console_output == ["synthetic ready: true"]

    @pytest.mark.parametrize("shapes", [1, 5, 20])
    def test_shape_count_scales_hidden_classes(self, shapes):
        engine = Engine(seed=2)
        profile = engine.run(
            generated_scripts(shapes=shapes, fields_per_shape=3), name="synth"
        )
        assert profile.console_output[-1].endswith("true")
        # Each shape family contributes fields_per_shape transitions plus a
        # constructor root.
        created = profile.counters.hidden_classes_created
        assert created >= shapes * 4

    @pytest.mark.parametrize("fields", [1, 4, 8])
    def test_fields_scale_chain_depth(self, fields):
        from repro.stats.hc_graph import transition_stats

        engine = Engine(seed=2)
        engine.run(
            generated_scripts(shapes=2, fields_per_shape=fields), name="synth"
        )
        stats = transition_stats(engine.last_run.runtime)
        assert stats.max_chain_depth >= fields

    def test_sites_per_shape_scales_misses_per_hc(self):
        def ratio(sites_per_shape):
            engine = Engine(seed=2)
            profile = engine.run(
                generated_scripts(shapes=8, sites_per_shape=sites_per_shape),
                name="synth",
            )
            counters = profile.counters
            return counters.ic_misses / counters.hidden_classes_created

        assert ratio(6) > ratio(1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_library(shapes=0)
        with pytest.raises(ValueError):
            generate_library(sites_per_shape=0)

    def test_filename_encodes_parameters(self):
        (name_a, _), = generated_scripts(shapes=3, sites_per_shape=2)
        (name_b, _), = generated_scripts(shapes=3, sites_per_shape=5)
        assert name_a != name_b

    def test_generated_programs_are_ric_sound(self):
        engine = Engine(seed=2)
        scripts = generated_scripts(shapes=6, sites_per_shape=4)
        initial = engine.run(scripts, name="synth")
        record = engine.extract_icrecord()
        ric = engine.run(scripts, name="synth", icrecord=record)
        assert ric.console_output == initial.console_output
        assert ric.counters.ic_misses < initial.counters.ic_misses

    def test_determinism(self):
        assert generate_library(5, 3, 2, 2) == generate_library(5, 3, 2, 2)
