"""Unit tests for the ricd wire protocol (repro.server.protocol).

Everything here runs on socketpairs — no daemon, no filesystem sockets —
so it exercises exactly the frame codec and its hostility to malformed
input.
"""

import json
import socket
import struct

import pytest

from repro.server import protocol
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    cache_key,
    encode_frame,
    key_fields,
    read_frame,
    write_frame,
)


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    left.settimeout(2.0)
    right.settimeout(2.0)
    yield left, right
    left.close()
    right.close()


class TestFrameCodec:
    def test_round_trip(self, pair):
        left, right = pair
        message = {"v": PROTOCOL_VERSION, "op": "GET", "key": ["a.jsl", "ff", 3]}
        write_frame(left, message)
        assert read_frame(right) == message

    def test_multiple_frames_in_sequence(self, pair):
        left, right = pair
        for index in range(5):
            write_frame(left, {"n": index})
        for index in range(5):
            assert read_frame(right) == {"n": index}

    def test_clean_eof_returns_none(self, pair):
        left, right = pair
        left.close()
        assert read_frame(right) is None

    def test_eof_mid_header_raises(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00")
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_frame(right)

    def test_eof_mid_body_raises(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 100) + b"only a little")
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_frame(right)

    def test_oversized_length_prefix_refused(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame(right)

    def test_garbage_body_raises(self, pair):
        left, right = pair
        body = b"\xff\xfe not json"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON"):
            read_frame(right)

    def test_non_object_body_raises(self, pair):
        left, right = pair
        body = json.dumps([1, 2, 3]).encode()
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="object"):
            read_frame(right)

    def test_encode_refuses_oversized_messages(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 16)})

    def test_frame_layout_is_length_prefixed(self):
        frame = encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert json.loads(frame[4:].decode()) == {"a": 1}


class TestMessageSchema:
    def test_cache_key_includes_format_version(self):
        assert cache_key("lib.jsl", "abcd", 3) == "lib.jsl:abcd:v3"

    def test_key_fields_round_trip(self):
        message = {"key": ["lib.jsl", "abcd", 3]}
        assert key_fields(message) == ("lib.jsl", "abcd", 3)

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            [],
            ["a", "b"],
            ["a", "b", "c"],
            [1, "b", 3],
            ["a", 2, 3],
            ["a", "b", True],
            "a:b:3",
        ],
    )
    def test_key_fields_rejects_malformed_keys(self, bad):
        with pytest.raises(ProtocolError, match="key"):
            key_fields({"key": bad})

    def test_version_check(self):
        protocol.check_version({"v": PROTOCOL_VERSION})
        with pytest.raises(ProtocolError, match="version"):
            protocol.check_version({"v": PROTOCOL_VERSION + 1})
        with pytest.raises(ProtocolError, match="version"):
            protocol.check_version({})

    def test_request_and_response_builders(self):
        assert protocol.request("GET", key=[1]) == {
            "v": PROTOCOL_VERSION,
            "op": "GET",
            "key": [1],
        }
        assert protocol.ok_response(hit=False)["ok"] is True
        error = protocol.error_response("boom")
        assert error["ok"] is False and error["error"] == "boom"
