"""Module-level unit tests for FeedbackState and ReuseSession internals
(no engine; structures are driven directly)."""

from repro.bytecode.compiler import compile_source
from repro.core.config import RICConfig
from repro.ic.handlers import LoadFieldHandler
from repro.ic.icvector import POLY_LIMIT, FeedbackState, ICState
from repro.ric.icrecord import DependentEntry, HCVTRow, ICRecord, ToastPair
from repro.ric.reuse import ReuseSession
from repro.runtime.heap import Heap
from repro.runtime.hidden_class import HiddenClassRegistry
from repro.stats.counters import MISS_HANDLER, MISS_OTHER, Counters


def make_feedback(source="var v = o.x; o.x = 1;", filename="u.jsl"):
    code = compile_source(source, filename)
    feedback = FeedbackState()
    feedback.register_script(code)
    return code, feedback


class TestFeedbackState:
    def test_register_is_idempotent(self):
        code, feedback = make_feedback()
        before = len(list(feedback.all_sites()))
        feedback.register_script(code)
        assert len(list(feedback.all_sites())) == before

    def test_vector_for_round_trips(self):
        code, feedback = make_feedback()
        vector = feedback.vector_for(code)
        assert len(vector) == len(code.feedback_slots)
        assert vector[0].info is code.feedback_slots[0]

    def test_site_by_key_finds_every_site(self):
        code, feedback = make_feedback()
        for info in code.feedback_slots:
            assert feedback.site_by_key(info.site_key) is not None

    def test_unknown_key_is_none(self):
        _, feedback = make_feedback()
        assert feedback.site_by_key("nope:1:1:named_load") is None

    def test_nested_functions_registered(self):
        code, feedback = make_feedback("function f(o) { return o.y; } f({y: 1});")
        keys = {site.info.site_key for site in feedback.all_sites()}
        assert any(":named_load" in key and "y" or False for key in keys)
        nested = [c for c in code.iter_code_objects() if c.name == "f"][0]
        assert feedback.vector_for(nested) is not None


def make_record_and_session(dependents=None, cd_sites=None, config=None):
    """A two-row record: HCID 0 = builtin empty object, HCID 1 = +x."""
    record = ICRecord()
    record.handlers = [{"kind": "load_field", "offset": 0}]
    record.hcvt = [
        HCVTRow(hcid=0),
        HCVTRow(
            hcid=1,
            dependents=[
                DependentEntry(site_key, 0) for site_key in (dependents or [])
            ],
            cd_dependent_sites=list(cd_sites or []),
        ),
    ]
    record.toast = {
        "builtin:EmptyObject": [ToastPair(None, None, 0)],
        "u.jsl:1:16:named_store": [ToastPair(0, "x", 1)],
    }
    code, feedback = make_feedback("var v = o.x; o.x = 1;")
    counters = Counters()
    session = ReuseSession(record, feedback, counters, config or RICConfig())
    return record, feedback, counters, session, code


def registry():
    return HiddenClassRegistry(Heap(seed=1))


class TestReuseSessionValidation:
    def test_builtin_key_validates(self):
        _, _, counters, session, _ = make_record_and_session()
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        assert 0 in session.validated
        assert session.address_by_hcid[0] == root.address
        assert counters.ric_validations == 1

    def test_unknown_key_is_ignored(self):
        _, _, counters, session, _ = make_record_and_session()
        reg = registry()
        stranger = reg.create_root("builtin", "builtin:NotInRecord", None)
        session.on_hidden_class_created(stranger)
        assert not session.validated
        assert counters.ric_divergences == 0  # unknown != divergent

    def test_transition_validates_when_incoming_matches(self):
        load_key = None
        _, feedback, counters, session, code = make_record_and_session()
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        outgoing, _ = reg.transition(root, "x", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(outgoing)
        assert 1 in session.validated
        del load_key

    def test_transition_property_mismatch_diverges(self):
        _, _, counters, session, _ = make_record_and_session()
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        wrong_prop, _ = reg.transition(root, "z", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(wrong_prop)
        assert 1 not in session.validated
        assert counters.ric_divergences == 1

    def test_incoming_address_mismatch_diverges(self):
        _, _, counters, session, _ = make_record_and_session()
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        imposter = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)  # validates at root's address
        outgoing, _ = reg.transition(imposter, "x", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(outgoing)
        assert 1 not in session.validated
        assert counters.ric_divergences == 1

    def test_unvalidated_incoming_diverges(self):
        _, _, counters, session, _ = make_record_and_session()
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        # Root never offered to the session -> HCID 0 not validated.
        outgoing, _ = reg.transition(root, "x", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(outgoing)
        assert 1 not in session.validated


class TestReuseSessionPreloading:
    LOAD_KEY = "u.jsl:1:11:named_load"

    def drive(self, session, feedback):
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        outgoing, _ = reg.transition(root, "x", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(outgoing)
        return outgoing

    def test_validation_preloads_dependent(self):
        _, feedback, counters, session, _ = make_record_and_session(
            dependents=[self.LOAD_KEY]
        )
        outgoing = self.drive(session, feedback)
        site = feedback.site_by_key(self.LOAD_KEY)
        assert site.lookup(outgoing) is not None
        assert site.was_preloaded(outgoing)
        assert counters.ric_preloads == 1

    def test_missing_site_is_skipped(self):
        _, feedback, counters, session, _ = make_record_and_session(
            dependents=["other.jsl:9:9:named_load"]
        )
        self.drive(session, feedback)
        assert counters.ric_preloads == 0

    def test_linking_disabled_skips_preloads(self):
        _, feedback, counters, session, _ = make_record_and_session(
            dependents=[self.LOAD_KEY], config=RICConfig(enable_linking=False)
        )
        self.drive(session, feedback)
        assert counters.ric_preloads == 0

    def test_full_site_not_overfilled(self):
        _, feedback, counters, session, _ = make_record_and_session(
            dependents=[self.LOAD_KEY]
        )
        site = feedback.site_by_key(self.LOAD_KEY)
        reg = registry()
        for _ in range(POLY_LIMIT):
            filler = reg.create_root("builtin", "builtin:filler", None)
            site.install(filler, LoadFieldHandler(0))
        self.drive(session, feedback)
        assert counters.ric_preloads == 0
        assert site.state is not ICState.MEGAMORPHIC  # preload didn't tip it

    def test_existing_slot_not_duplicated(self):
        _, feedback, counters, session, _ = make_record_and_session(
            dependents=[self.LOAD_KEY]
        )
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        outgoing, _ = reg.transition(root, "x", "u.jsl:1:16:named_store")
        site = feedback.site_by_key(self.LOAD_KEY)
        site.install(outgoing, LoadFieldHandler(0))  # already there
        session.on_hidden_class_created(outgoing)
        assert counters.ric_preloads == 0
        assert len(site.slots) == 1


class TestMissClassification:
    def test_cd_dependent_site_classified_handler(self):
        load_key = "u.jsl:1:11:named_load"
        _, feedback, counters, session, _ = make_record_and_session(
            cd_sites=[load_key]
        )
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        outgoing, _ = reg.transition(root, "x", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(outgoing)
        site = feedback.site_by_key(load_key)
        assert session.classify_miss(site, outgoing) == MISS_HANDLER

    def test_unvalidated_class_classified_other(self):
        load_key = "u.jsl:1:11:named_load"
        _, feedback, _, session, _ = make_record_and_session(cd_sites=[load_key])
        reg = registry()
        stray = reg.create_root("builtin", "builtin:NotInRecord", None)
        site = feedback.site_by_key(load_key)
        assert session.classify_miss(site, stray) == MISS_OTHER

    def test_non_cd_site_classified_other(self):
        other_key = "u.jsl:1:16:named_store"
        _, feedback, _, session, _ = make_record_and_session(cd_sites=[])
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        site = feedback.site_by_key(other_key)
        assert session.classify_miss(site, root) == MISS_OTHER
