"""Module-level unit tests for FeedbackState and ReuseSession internals
(no engine; structures are driven directly)."""

from repro.bytecode.compiler import compile_source
from repro.core.config import RICConfig
from repro.ic.handlers import LoadFieldHandler
from repro.ic.icvector import POLY_LIMIT, FeedbackState, ICState
from repro.ric.icrecord import DependentEntry, HCVTRow, ICRecord, SiteSlot, ToastPair
from repro.ric.reuse import ReuseSession
from repro.runtime.heap import Heap
from repro.runtime.hidden_class import HiddenClassRegistry
from repro.stats.counters import MISS_HANDLER, MISS_OTHER, Counters


def make_feedback(source="var v = o.x; o.x = 1;", filename="u.jsl"):
    code = compile_source(source, filename)
    feedback = FeedbackState()
    feedback.register_script(code)
    return code, feedback


class TestFeedbackState:
    def test_register_is_idempotent(self):
        code, feedback = make_feedback()
        before = len(list(feedback.all_sites()))
        feedback.register_script(code)
        assert len(list(feedback.all_sites())) == before

    def test_vector_for_round_trips(self):
        code, feedback = make_feedback()
        vector = feedback.vector_for(code)
        assert len(vector) == len(code.feedback_slots)
        assert vector[0].info is code.feedback_slots[0]

    def test_site_by_key_finds_every_site(self):
        code, feedback = make_feedback()
        for info in code.feedback_slots:
            assert feedback.site_by_key(info.site_key) is not None

    def test_unknown_key_is_none(self):
        _, feedback = make_feedback()
        assert feedback.site_by_key("nope:1:1:named_load") is None

    def test_nested_functions_registered(self):
        code, feedback = make_feedback("function f(o) { return o.y; } f({y: 1});")
        keys = {site.info.site_key for site in feedback.all_sites()}
        assert any(":named_load" in key and "y" or False for key in keys)
        nested = [c for c in code.iter_code_objects() if c.name == "f"][0]
        assert feedback.vector_for(nested) is not None


def make_record_and_session(dependents=None, cd_sites=None, config=None):
    """A two-row record: HCID 0 = builtin empty object, HCID 1 = +x."""
    record = ICRecord()
    record.handlers = [{"kind": "load_field", "offset": 0}]
    record.hcvt = [
        HCVTRow(hcid=0),
        HCVTRow(
            hcid=1,
            dependents=[
                DependentEntry(site_key, 0) for site_key in (dependents or [])
            ],
            cd_dependent_sites=list(cd_sites or []),
        ),
    ]
    record.toast = {
        "builtin:EmptyObject": [ToastPair(None, None, 0)],
        "u.jsl:1:16:named_store": [ToastPair(0, "x", 1)],
    }
    code, feedback = make_feedback("var v = o.x; o.x = 1;")
    counters = Counters()
    session = ReuseSession(record, feedback, counters, config or RICConfig())
    return record, feedback, counters, session, code


def registry():
    return HiddenClassRegistry(Heap(seed=1))


class TestReuseSessionValidation:
    def test_builtin_key_validates(self):
        _, _, counters, session, _ = make_record_and_session()
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        assert 0 in session.validated
        assert session.address_by_hcid[0] == root.address
        assert counters.ric_validations == 1

    def test_unknown_key_is_ignored(self):
        _, _, counters, session, _ = make_record_and_session()
        reg = registry()
        stranger = reg.create_root("builtin", "builtin:NotInRecord", None)
        session.on_hidden_class_created(stranger)
        assert not session.validated
        assert counters.ric_divergences == 0  # unknown != divergent

    def test_transition_validates_when_incoming_matches(self):
        load_key = None
        _, feedback, counters, session, code = make_record_and_session()
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        outgoing, _ = reg.transition(root, "x", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(outgoing)
        assert 1 in session.validated
        del load_key

    def test_transition_property_mismatch_diverges(self):
        _, _, counters, session, _ = make_record_and_session()
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        wrong_prop, _ = reg.transition(root, "z", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(wrong_prop)
        assert 1 not in session.validated
        assert counters.ric_divergences == 1

    def test_incoming_address_mismatch_diverges(self):
        _, _, counters, session, _ = make_record_and_session()
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        imposter = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)  # validates at root's address
        outgoing, _ = reg.transition(imposter, "x", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(outgoing)
        assert 1 not in session.validated
        assert counters.ric_divergences == 1

    def test_unvalidated_incoming_diverges(self):
        _, _, counters, session, _ = make_record_and_session()
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        # Root never offered to the session -> HCID 0 not validated.
        outgoing, _ = reg.transition(root, "x", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(outgoing)
        assert 1 not in session.validated


class TestReuseSessionPreloading:
    LOAD_KEY = "u.jsl:1:11:named_load"

    def drive(self, session, feedback):
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        outgoing, _ = reg.transition(root, "x", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(outgoing)
        return outgoing

    def test_validation_preloads_dependent(self):
        _, feedback, counters, session, _ = make_record_and_session(
            dependents=[self.LOAD_KEY]
        )
        outgoing = self.drive(session, feedback)
        site = feedback.site_by_key(self.LOAD_KEY)
        assert site.lookup(outgoing) is not None
        assert site.was_preloaded(outgoing)
        assert counters.ric_preloads == 1

    def test_missing_site_is_skipped(self):
        _, feedback, counters, session, _ = make_record_and_session(
            dependents=["other.jsl:9:9:named_load"]
        )
        self.drive(session, feedback)
        assert counters.ric_preloads == 0

    def test_linking_disabled_skips_preloads(self):
        _, feedback, counters, session, _ = make_record_and_session(
            dependents=[self.LOAD_KEY], config=RICConfig(enable_linking=False)
        )
        self.drive(session, feedback)
        assert counters.ric_preloads == 0

    def test_full_site_not_overfilled(self):
        _, feedback, counters, session, _ = make_record_and_session(
            dependents=[self.LOAD_KEY]
        )
        site = feedback.site_by_key(self.LOAD_KEY)
        reg = registry()
        for _ in range(POLY_LIMIT):
            filler = reg.create_root("builtin", "builtin:filler", None)
            site.install(filler, LoadFieldHandler(0))
        self.drive(session, feedback)
        assert counters.ric_preloads == 0
        assert site.state is not ICState.MEGAMORPHIC  # preload didn't tip it

    def test_existing_slot_not_duplicated(self):
        _, feedback, counters, session, _ = make_record_and_session(
            dependents=[self.LOAD_KEY]
        )
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        outgoing, _ = reg.transition(root, "x", "u.jsl:1:16:named_store")
        site = feedback.site_by_key(self.LOAD_KEY)
        site.install(outgoing, LoadFieldHandler(0))  # already there
        session.on_hidden_class_created(outgoing)
        assert counters.ric_preloads == 0
        assert len(site.slots) == 1


_STATE_ORDER = [
    ICState.UNINITIALIZED,
    ICState.MONOMORPHIC,
    ICState.POLYMORPHIC,
    ICState.MEGAMORPHIC,
]


class TestICStateMachine:
    """Property tests for the UNINITIALIZED → MONO → POLY → MEGA machine
    driven directly on an :class:`ICSite` (INTERNALS §13)."""

    LOAD_KEY = "u.jsl:1:11:named_load"

    def fresh_site(self):
        _, feedback = make_feedback()
        return feedback.site_by_key(self.LOAD_KEY)

    def shapes(self, count):
        reg = registry()
        return [
            reg.create_root("builtin", f"builtin:S{i}", None) for i in range(count)
        ]

    def test_transitions_are_monotone(self):
        """Installs only ever move the state rightwards along
        UNINIT → MONO → POLY → MEGA, one shape at a time."""
        site = self.fresh_site()
        seen = [site.state]
        for hc in self.shapes(POLY_LIMIT + 1):
            site.install(hc, LoadFieldHandler(0))
            seen.append(site.state)
        ranks = [_STATE_ORDER.index(state) for state in seen]
        assert ranks == sorted(ranks)
        assert seen[0] is ICState.UNINITIALIZED
        assert seen[1] is ICState.MONOMORPHIC
        assert all(s is ICState.POLYMORPHIC for s in seen[2:-1])
        assert seen[-1] is ICState.MEGAMORPHIC

    def test_never_leaves_megamorphic(self):
        site = self.fresh_site()
        shapes = self.shapes(POLY_LIMIT + 3)
        for hc in shapes:
            site.install(hc, LoadFieldHandler(0))
        assert site.state is ICState.MEGAMORPHIC
        assert site.slots == []
        # Neither new nor previously-seen shapes reanimate the site.
        for hc in shapes:
            assert site.install(hc, LoadFieldHandler(0)) is False
            assert site.state is ICState.MEGAMORPHIC
            assert site.slots == []
            assert site.lookup(hc) is None

    def test_slots_never_shrink_before_mega(self):
        site = self.fresh_site()
        shapes = self.shapes(POLY_LIMIT)
        sizes = []
        for hc in shapes:
            site.install(hc, LoadFieldHandler(0))
            sizes.append(len(site.slots))
            # Re-installing a seen shape replaces in place, never shrinks.
            site.install(hc, LoadFieldHandler(1))
            sizes.append(len(site.slots))
        assert sizes == sorted(sizes)
        assert len(site.slots) == POLY_LIMIT
        assert site.state is ICState.POLYMORPHIC

    def test_mru_reorder_preserves_the_slot_set(self):
        site = self.fresh_site()
        shapes = self.shapes(3)
        handlers = {hc.address: LoadFieldHandler(i) for i, hc in enumerate(shapes)}
        for hc in shapes:
            site.install(hc, handlers[hc.address])
        before = {entry[0].address: entry[1] for entry in site.slots}

        # A hit moves its entry to the front and changes nothing else.
        assert site.lookup(shapes[2]) is handlers[shapes[2].address]
        assert site.slots[0][0] is shapes[2]
        assert {entry[0].address: entry[1] for entry in site.slots} == before
        assert site.state is ICState.POLYMORPHIC

        # A miss leaves the order alone entirely.
        order = [entry[0].address for entry in site.slots]
        stranger = registry().create_root("builtin", "builtin:stranger", None)
        assert site.lookup(stranger) is None
        assert [entry[0].address for entry in site.slots] == order

    def _poly_record_session(self, plan_order):
        """A record with three builtin rows, all Dependents of LOAD_KEY,
        whose persisted slot order is ``plan_order`` (a permutation of
        hcids)."""
        record = ICRecord()
        record.handlers = [{"kind": "load_field", "offset": 0}]
        record.hcvt = [
            HCVTRow(hcid=i, dependents=[DependentEntry(self.LOAD_KEY, 0)])
            for i in range(3)
        ]
        record.toast = {
            f"builtin:S{i}": [ToastPair(None, None, i)] for i in range(3)
        }
        record.site_slots = {
            self.LOAD_KEY: [SiteSlot(hcid, 0) for hcid in plan_order]
        }
        _, feedback = make_feedback()
        counters = Counters()
        session = ReuseSession(record, feedback, counters, RICConfig())
        return record, feedback, counters, session

    def test_preloaded_slots_follow_the_persisted_order(self):
        """Whatever order validation happens in, a fully-preloaded POLY
        site ends up probing in the extraction-time (MRU) order."""
        _, feedback, counters, session = self._poly_record_session([2, 0, 1])
        reg = registry()
        shapes = [
            reg.create_root("builtin", f"builtin:S{i}", None) for i in range(3)
        ]
        for hc in shapes:  # validate in hcid order: 0, 1, 2
            session.on_hidden_class_created(hc)
        site = feedback.site_by_key(self.LOAD_KEY)
        assert counters.ric_preloads == 3
        assert site.state is ICState.POLYMORPHIC
        assert [entry[0] for entry in site.slots] == [
            shapes[2],
            shapes[0],
            shapes[1],
        ]
        assert all(site.was_preloaded(hc) for hc in shapes)

    def test_preloaded_site_equivalent_to_organically_warmed(self):
        """A persisted-then-preloaded vector behaves exactly like one the
        run warmed itself: same slot set, same handlers, same state, and
        the same MRU evolution under a common probe sequence."""
        _, feedback, _, session = self._poly_record_session([2, 0, 1])
        reg = registry()
        shapes = [
            reg.create_root("builtin", f"builtin:S{i}", None) for i in range(3)
        ]
        for hc in shapes:
            session.on_hidden_class_created(hc)
        preloaded = feedback.site_by_key(self.LOAD_KEY)

        organic = self.fresh_site()
        for hc in shapes:
            organic.install(hc, LoadFieldHandler(0))

        assert preloaded.state is organic.state is ICState.POLYMORPHIC
        assert {e[0].address for e in preloaded.slots} == {
            e[0].address for e in organic.slots
        }
        for hc in shapes:
            got_a, got_b = preloaded.lookup(hc), organic.lookup(hc)
            assert type(got_a) is type(got_b)
            assert got_a.offset == got_b.offset

        # Initial orders may differ (plan vs install order) but MRU
        # converges them under any shared access sequence.
        for hc in (shapes[1], shapes[0], shapes[1]):
            preloaded.lookup(hc)
            organic.lookup(hc)
        assert [e[0] for e in preloaded.slots] == [e[0] for e in organic.slots]


class TestMissClassification:
    def test_cd_dependent_site_classified_handler(self):
        load_key = "u.jsl:1:11:named_load"
        _, feedback, counters, session, _ = make_record_and_session(
            cd_sites=[load_key]
        )
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        outgoing, _ = reg.transition(root, "x", "u.jsl:1:16:named_store")
        session.on_hidden_class_created(outgoing)
        site = feedback.site_by_key(load_key)
        assert session.classify_miss(site, outgoing) == MISS_HANDLER

    def test_unvalidated_class_classified_other(self):
        load_key = "u.jsl:1:11:named_load"
        _, feedback, _, session, _ = make_record_and_session(cd_sites=[load_key])
        reg = registry()
        stray = reg.create_root("builtin", "builtin:NotInRecord", None)
        site = feedback.site_by_key(load_key)
        assert session.classify_miss(site, stray) == MISS_OTHER

    def test_non_cd_site_classified_other(self):
        other_key = "u.jsl:1:16:named_store"
        _, feedback, _, session, _ = make_record_and_session(cd_sites=[])
        reg = registry()
        root = reg.create_root("builtin", "builtin:EmptyObject", None)
        session.on_hidden_class_created(root)
        site = feedback.site_by_key(other_key)
        assert session.classify_miss(site, root) == MISS_OTHER
