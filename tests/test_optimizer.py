"""Tests for the peephole bytecode optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode.compiler import compile_source
from repro.bytecode.opcodes import Op
from repro.bytecode.optimizer import optimize_code
from repro.core.engine import Engine


def ops_of(code):
    return [instruction[0] for instruction in code.instructions]


class TestConstantFolding:
    def test_binary_arithmetic_folds(self):
        code = compile_source("var x = 2 + 3 * 4;")
        result = optimize_code(code)
        assert result.binary_folds >= 2  # 3*4 then 2+12
        assert Op.BINARY not in ops_of(code)

    def test_unary_folds(self):
        code = compile_source("var x = -5; var y = !true;")
        result = optimize_code(code)
        assert result.unary_folds >= 2
        assert Op.UNARY not in ops_of(code)

    def test_string_concat_folds(self):
        code = compile_source("var s = 'a' + 'b' + 'c';")
        optimize_code(code)
        assert "abc" in code.constants

    def test_comparison_folds_to_boolean_push(self):
        code = compile_source("var t = 1 < 2; var f = 3 === 4;")
        optimize_code(code)
        ops = ops_of(code)
        assert Op.LOAD_TRUE in ops and Op.LOAD_FALSE in ops
        assert Op.BINARY not in ops

    def test_non_constant_operands_untouched(self):
        code = compile_source("var x = a + 1;")
        result = optimize_code(code)
        assert result.binary_folds == 0
        assert Op.BINARY in ops_of(code)

    def test_folding_respects_jump_targets(self):
        # The loop-back edge targets the condition; folding must not
        # collapse across it or break the loop.
        source = """
        var n = 0;
        for (var i = 0; i < 3; i++) { n += 2 * 2; }
        console.log(n);
        """
        engine = Engine(seed=1)
        assert engine.run(source, name="t").console_output == ["12"]

    def test_nested_functions_optimized(self):
        code = compile_source("function f() { return 6 * 7; }")
        result = optimize_code(code)
        assert result.binary_folds >= 1
        inner = next(c for c in code.iter_code_objects() if c.name == "f")
        assert Op.BINARY not in ops_of(inner)

    def test_positions_stay_aligned(self):
        code = compile_source("var x = 1 + 2;\nvar y = 3;\n")
        optimize_code(code)
        assert len(code.positions) == len(code.instructions)


class TestJumpThreading:
    def test_jump_chains_collapse(self):
        # Nested if/else produces jump-to-jump chains.
        source = """
        function f(a, b) {
          if (a) { if (b) { return 1; } else { return 2; } }
          else { return 3; }
        }
        console.log(f(true, false), f(false, false));
        """
        code = compile_source(source)
        result = optimize_code(code)
        engine = Engine(seed=1)
        assert engine.run(source, name="t").console_output == ["2 3"]
        del result  # threading count depends on codegen details

    def test_threaded_code_runs_all_control_flow(self):
        source = """
        var out = [];
        for (var i = 0; i < 5; i++) {
          if (i % 2 === 0) { out.push("e" + i); } else { out.push("o" + i); }
        }
        switch (out.length) { case 5: out.push("five"); break; default: out.push("?"); }
        console.log(out.join(","));
        """
        engine = Engine(seed=1)
        assert engine.run(source, name="t").console_output == [
            "e0,o1,e2,o3,e4,five"
        ]


class TestOptimizedSemantics:
    """The optimizer must be observationally invisible."""

    PROGRAMS = [
        "console.log(1 + 2 * 3 - 4 / 2);",
        "console.log('x' + 1 + 2, 1 + 2 + 'x');",
        "console.log(0 / 0 === 0 / 0, 1 / 0, -1 / 0);",
        "console.log(5 % 3, -5 % 3, 5 % -3);",
        "console.log(1 << 30, -1 >>> 28, ~0, 5 & 3 | 8 ^ 1);",
        "console.log(!0, !!'', -'' === 0);",
        "console.log('b' > 'a', 2 >= '2', NaN < NaN);",
        "var i = 0; while (i < 3) { i += 1 + 1; } console.log(i);",
        "try { throw 1 + 1; } catch (e) { console.log(e); }",
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_optimized_equals_unoptimized(self, source):
        plain = Engine(seed=3, optimize=False).run(source, name="p")
        optimized = Engine(seed=3, optimize=True).run(source, name="o")
        assert plain.console_output == optimized.console_output

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_optimizer_reduces_or_preserves_instruction_count(self, source):
        plain = Engine(seed=3, optimize=False).run(source, name="p")
        optimized = Engine(seed=3, optimize=True).run(source, name="o")
        assert optimized.total_instructions <= plain.total_instructions

    @given(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
        st.sampled_from(["+", "-", "*", "/", "%", "<", ">", "==", "===", "&", "|", "^", "<<", ">>", ">>>"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_folding_matches_vm_for_random_constants(self, a, b, op):
        source = f"console.log(({a}) {op} ({b}));"
        plain = Engine(seed=3, optimize=False).run(source, name="p")
        optimized = Engine(seed=3, optimize=True).run(source, name="o")
        assert plain.console_output == optimized.console_output

    def test_ric_protocol_unaffected_by_optimizer(self):
        source = """
        function C() { this.v = 1 + 1; }
        var a = new C(); var b = new C();
        function r(o) { return o.v; }
        console.log(r(a) + r(b));
        """
        engine = Engine(seed=3, optimize=True)
        initial = engine.run(source, name="t")
        record = engine.extract_icrecord()
        ric = engine.run(source, name="t", icrecord=record)
        assert ric.console_output == initial.console_output == ["4"]
        assert ric.counters.ic_hits_on_preloaded > 0
