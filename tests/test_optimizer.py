"""Tests for the peephole bytecode optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode.compiler import compile_source
from repro.bytecode.opcodes import Op
from repro.bytecode.optimizer import optimize_code
from repro.core.engine import Engine


def ops_of(code):
    return [instruction[0] for instruction in code.instructions]


class TestConstantFolding:
    def test_binary_arithmetic_folds(self):
        code = compile_source("var x = 2 + 3 * 4;")
        result = optimize_code(code)
        assert result.binary_folds >= 2  # 3*4 then 2+12
        assert Op.BINARY not in ops_of(code)

    def test_unary_folds(self):
        code = compile_source("var x = -5; var y = !true;")
        result = optimize_code(code)
        assert result.unary_folds >= 2
        assert Op.UNARY not in ops_of(code)

    def test_string_concat_folds(self):
        code = compile_source("var s = 'a' + 'b' + 'c';")
        optimize_code(code)
        assert "abc" in code.constants

    def test_comparison_folds_to_boolean_push(self):
        code = compile_source("var t = 1 < 2; var f = 3 === 4;")
        optimize_code(code)
        ops = ops_of(code)
        assert Op.LOAD_TRUE in ops and Op.LOAD_FALSE in ops
        assert Op.BINARY not in ops

    def test_non_constant_operands_untouched(self):
        code = compile_source("var x = a + 1;")
        result = optimize_code(code)
        assert result.binary_folds == 0
        assert Op.BINARY in ops_of(code)

    def test_folding_respects_jump_targets(self):
        # The loop-back edge targets the condition; folding must not
        # collapse across it or break the loop.
        source = """
        var n = 0;
        for (var i = 0; i < 3; i++) { n += 2 * 2; }
        console.log(n);
        """
        engine = Engine(seed=1)
        assert engine.run(source, name="t").console_output == ["12"]

    def test_nested_functions_optimized(self):
        code = compile_source("function f() { return 6 * 7; }")
        result = optimize_code(code)
        assert result.binary_folds >= 1
        inner = next(c for c in code.iter_code_objects() if c.name == "f")
        assert Op.BINARY not in ops_of(inner)

    def test_positions_stay_aligned(self):
        code = compile_source("var x = 1 + 2;\nvar y = 3;\n")
        optimize_code(code)
        assert len(code.positions) == len(code.instructions)


class TestJumpThreading:
    def test_jump_chains_collapse(self):
        # Nested if/else produces jump-to-jump chains.
        source = """
        function f(a, b) {
          if (a) { if (b) { return 1; } else { return 2; } }
          else { return 3; }
        }
        console.log(f(true, false), f(false, false));
        """
        code = compile_source(source)
        result = optimize_code(code)
        engine = Engine(seed=1)
        assert engine.run(source, name="t").console_output == ["2 3"]
        del result  # threading count depends on codegen details

    def test_threaded_code_runs_all_control_flow(self):
        source = """
        var out = [];
        for (var i = 0; i < 5; i++) {
          if (i % 2 === 0) { out.push("e" + i); } else { out.push("o" + i); }
        }
        switch (out.length) { case 5: out.push("five"); break; default: out.push("?"); }
        console.log(out.join(","));
        """
        engine = Engine(seed=1)
        assert engine.run(source, name="t").console_output == [
            "e0,o1,e2,o3,e4,five"
        ]


class TestOptimizedSemantics:
    """The optimizer must be observationally invisible."""

    PROGRAMS = [
        "console.log(1 + 2 * 3 - 4 / 2);",
        "console.log('x' + 1 + 2, 1 + 2 + 'x');",
        "console.log(0 / 0 === 0 / 0, 1 / 0, -1 / 0);",
        "console.log(5 % 3, -5 % 3, 5 % -3);",
        "console.log(1 << 30, -1 >>> 28, ~0, 5 & 3 | 8 ^ 1);",
        "console.log(!0, !!'', -'' === 0);",
        "console.log('b' > 'a', 2 >= '2', NaN < NaN);",
        "var i = 0; while (i < 3) { i += 1 + 1; } console.log(i);",
        "try { throw 1 + 1; } catch (e) { console.log(e); }",
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_optimized_equals_unoptimized(self, source):
        plain = Engine(seed=3, optimize=False).run(source, name="p")
        optimized = Engine(seed=3, optimize=True).run(source, name="o")
        assert plain.console_output == optimized.console_output

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_optimizer_reduces_or_preserves_instruction_count(self, source):
        plain = Engine(seed=3, optimize=False).run(source, name="p")
        optimized = Engine(seed=3, optimize=True).run(source, name="o")
        assert optimized.total_instructions <= plain.total_instructions

    @given(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
        st.sampled_from(["+", "-", "*", "/", "%", "<", ">", "==", "===", "&", "|", "^", "<<", ">>", ">>>"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_folding_matches_vm_for_random_constants(self, a, b, op):
        source = f"console.log(({a}) {op} ({b}));"
        plain = Engine(seed=3, optimize=False).run(source, name="p")
        optimized = Engine(seed=3, optimize=True).run(source, name="o")
        assert plain.console_output == optimized.console_output

    def test_ric_protocol_unaffected_by_optimizer(self):
        source = """
        function C() { this.v = 1 + 1; }
        var a = new C(); var b = new C();
        function r(o) { return o.v; }
        console.log(r(a) + r(b));
        """
        engine = Engine(seed=3, optimize=True)
        initial = engine.run(source, name="t")
        record = engine.extract_icrecord()
        ric = engine.run(source, name="t", icrecord=record)
        assert ric.console_output == initial.console_output == ["4"]
        assert ric.counters.ic_hits_on_preloaded > 0


class TestSuperinstructionFusion:
    """The fusion pass: windows collapse to fused opcodes, never across a
    jump target, and fused execution is observationally invisible."""

    def test_increment_window_fuses_in_function_scope(self):
        source = """
        function f() {
          var i = 0;
          while (i < 10) { i = i + 1; }
          return i;
        }
        console.log(f());
        """
        code = compile_source(source)
        result = optimize_code(code)
        assert result.fused_inc_locals >= 1
        assert result.fused_cmp_jumps >= 1
        inner = next(c for c in code.iter_code_objects() if c.name == "f")
        inner_ops = ops_of(inner)
        assert Op.INC_LOCAL_CONST in inner_ops
        assert Op.CMP_JUMP_IF_FALSE in inner_ops
        assert Engine(seed=1).run(source, name="t").console_output == ["10"]

    def test_cmp_branch_fuses_for_if_conditions(self):
        source = """
        function g(a, b) { if (a < b) { return "lt"; } return "ge"; }
        console.log(g(1, 2), g(2, 1));
        """
        code = compile_source(source)
        result = optimize_code(code)
        assert result.fused_cmp_jumps >= 1
        assert Engine(seed=1).run(source, name="t").console_output == ["lt ge"]

    def test_fused_semantics_match_unoptimized_with_fewer_dispatches(self):
        source = """
        function count() {
          var total = 0;
          for (var i = 0; i < 50; i = i + 1) { total = total + 2; }
          return total;
        }
        console.log(count());
        """
        plain = Engine(seed=3, optimize=False).run(source, name="p")
        fused = Engine(seed=3, optimize=True).run(source, name="o")
        assert plain.console_output == fused.console_output == ["100"]
        # The fused opcodes' whole point: (width - 1) dispatches per
        # window execution disappear, output stays bit-identical.
        assert fused.counters.dispatches < plain.counters.dispatches

    # -- the jump-target guard, on hand-built instruction streams --------

    _INC_WINDOW = [
        (int(Op.LOAD_LOCAL), 0, 0),
        (int(Op.LOAD_CONST), 0, 0),
        (int(Op.BINARY), 0, 0),  # BinOp patched in _hand_code
        (int(Op.DUP), 0, 0),
        (int(Op.STORE_LOCAL), 0, 0),
        (int(Op.POP), 0, 0),
    ]

    def _hand_code(self, instructions):
        from repro.bytecode.code import CodeObject
        from repro.bytecode.opcodes import BinOp
        from repro.lang.errors import SourcePosition

        patched = [
            (op, int(BinOp.ADD), b) if op == Op.BINARY else (op, a, b)
            for op, a, b in instructions
        ]
        return CodeObject(
            name="hand",
            filename="hand.jsl",
            params=[],
            position=SourcePosition("hand.jsl", 1, 1),
            instructions=patched,
            positions=[(1, 1)] * len(patched),
            constants=[1.0],
            names=[],
            local_names=["s"],
            feedback_slots=[],
            decl_key="hand",
        )

    def test_fusion_never_fires_across_jump_targets(self):
        from repro.bytecode.optimizer import OptimizeResult, _fuse_superinstructions

        # A jump landing mid-window (on the BINARY, old pc 3) blocks it.
        blocked = self._hand_code([(int(Op.JUMP), 3, 0)] + self._INC_WINDOW)
        frozen = list(blocked.instructions)
        result = OptimizeResult()
        _fuse_superinstructions(blocked, result)
        assert result.fused_inc_locals == 0
        assert blocked.instructions == frozen

        # The same window with the jump landing ON its start fuses fine.
        allowed = self._hand_code([(int(Op.JUMP), 1, 0)] + self._INC_WINDOW)
        result = OptimizeResult()
        _fuse_superinstructions(allowed, result)
        assert result.fused_inc_locals == 1
        assert allowed.instructions[1][0] == Op.INC_LOCAL_CONST
        assert allowed.instructions[0] == (int(Op.JUMP), 1, 0)

    def test_cmp_fusion_respects_jump_targets(self):
        from repro.bytecode.opcodes import BinOp
        from repro.bytecode.optimizer import OptimizeResult, _fuse_superinstructions

        blocked = self._hand_code(
            [
                (int(Op.JUMP), 2, 0),  # lands on the JUMP_IF_FALSE
                (int(Op.BINARY), int(BinOp.LT), 0),
                (int(Op.JUMP_IF_FALSE), 0, 0),
            ]
        )
        frozen = list(blocked.instructions)
        result = OptimizeResult()
        _fuse_superinstructions(blocked, result)
        assert result.fused_cmp_jumps == 0
        assert blocked.instructions == frozen
