"""Shared-library record cache: the paper's §9 sharing argument, live.

The snapshot approach (§9) is application-specific: two apps using the same
library each need their own snapshot.  RIC information, by contrast, is
"maintained for each JavaScript file", so a library's record extracted
while running *one* application accelerates *every other* application that
loads the same file.

This example builds a browser-cache-shaped RecordStore on disk, warms it by
visiting application A, then visits application B (different app code, same
library) in a fresh engine and picks the library's record up from disk.

Usage::

    python examples/shared_library_cache.py
"""

import tempfile
from pathlib import Path

from repro import Engine
from repro.ric.store import RecordStore
from repro.workloads import get_workload

LIBRARY = get_workload("handlebarslike")

APP_A = [
    (LIBRARY.filename, LIBRARY.source),
    (
        "dashboard.jsl",
        """
        var renderRow = Handlebars.compile("<tr><td>{{name}}</td></tr>");
        var rows = "";
        var team = [{name: "ada"}, {name: "alan"}];
        for (var i = 0; i < team.length; i++) { rows += renderRow(team[i]); }
        console.log("dashboard:", rows.indexOf("ada") >= 0);
        """,
    ),
]

APP_B = [
    (LIBRARY.filename, LIBRARY.source),
    (
        "mailer.jsl",
        """
        var renderMail = Handlebars.compile("Dear {{user}}, {{body}}");
        var mail = renderMail({user: "grace", body: "ship it"});
        console.log("mailer:", mail === "Dear grace, ship it");
        """,
    ),
]


def main() -> None:
    cache_dir = Path(tempfile.mkdtemp(prefix="ric-store-"))

    # --- application A: first ever visit -------------------------------------
    print("== application A (dashboard) — cold visit ==")
    engine_a = Engine(seed=5)
    profile_a = engine_a.run(APP_A, name="app-a")
    print("  ", " / ".join(profile_a.console_output[-2:]))
    print(f"   {profile_a.counters.ic_misses} IC misses")

    store = RecordStore(directory=cache_dir)
    for filename, record in engine_a.extract_per_script_records().items():
        source = dict(APP_A)[filename]
        store.put(filename, source, record)
    print(f"   persisted {len(store)} per-script records to {cache_dir}")

    # --- application B: different app, same library, fresh engine ---------------
    print("\n== application B (mailer) — different app, same library ==")
    engine_b = Engine(seed=77)  # fresh process: different heap addresses
    fresh_store = RecordStore(directory=cache_dir)
    available = fresh_store.records_for(APP_B)
    print(f"   records found in the cache for B's scripts: {len(available)} "
          f"(the shared {LIBRARY.filename})")

    conventional = engine_b.run(APP_B, name="app-b")
    ric = engine_b.run(APP_B, name="app-b", icrecord=available)
    print("  ", " / ".join(ric.console_output[-2:]))
    print(f"   conventional: {conventional.counters.ic_misses} misses | "
          f"with shared record: {ric.counters.ic_misses} misses "
          f"({ric.counters.ric_preloads} preloads)")
    saving = 1 - ric.total_instructions / conventional.total_instructions
    print(f"   instruction saving from a record B never produced: {100 * saving:.1f}%")
    assert ric.console_output == conventional.console_output


if __name__ == "__main__":
    main()
