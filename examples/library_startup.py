"""Library-startup scenario: the paper's headline use case.

Measures the initialization of one of the seven bundled library workloads
(default: the React-like component framework), persists the ICRecord to
disk the way a browser would, and shows the startup improvement of a later
"page load" that reuses it.

Usage::

    python examples/library_startup.py [workload] [--record-path out.json]
"""

import argparse
import tempfile
from pathlib import Path

from repro import Engine, load_icrecord, record_size_bytes, save_icrecord
from repro.workloads import WORKLOAD_NAMES, get_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "workload",
        nargs="?",
        default="reactlike",
        choices=WORKLOAD_NAMES,
    )
    parser.add_argument("--record-path", default=None)
    args = parser.parse_args()

    workload = get_workload(args.workload)
    record_path = Path(
        args.record_path
        or Path(tempfile.gettempdir()) / f"{workload.name}.icrecord.json"
    )

    print(f"== first visit: initializing {workload.name} ==")
    engine = Engine(seed=7)
    initial = engine.run(workload.scripts(), name=workload.name)
    print(f"  {initial.console_output[-1]}")
    print(f"  IC miss rate: {initial.ic_miss_rate_pct:.1f}%  "
          f"({initial.counters.ic_misses} misses, "
          f"{initial.counters.hidden_classes_created} hidden classes)")
    print(f"  {100 * initial.ic_miss_handling_fraction:.0f}% of guest "
          f"instructions went to IC miss handling (paper Figure 5)")

    record = engine.extract_icrecord()
    save_icrecord(record, record_path)
    print(f"\n== extraction phase (off the critical path) ==")
    print(f"  extraction took {record.extraction_time_ms:.1f} ms "
          f"(paper §7.3: 6-30 ms)")
    print(f"  record persisted to {record_path} "
          f"({record_size_bytes(record) / 1024:.1f} KB; paper: 11-118 KB)")
    print(f"  {record.num_dependent_links} (Dependent site, handler) links, "
          f"{len(record.handlers)} distinct reusable handlers")

    print(f"\n== later visit: reusing the persisted record ==")
    reloaded = load_icrecord(record_path)
    conventional = engine.run(workload.scripts(), name=workload.name)
    ric = engine.run(workload.scripts(), name=workload.name, icrecord=reloaded)
    print(f"  conventional reuse: {conventional.counters.ic_misses} misses "
          f"({conventional.ic_miss_rate_pct:.1f}%)")
    print(f"  RIC reuse:          {ric.counters.ic_misses} misses "
          f"({ric.ic_miss_rate_pct:.1f}%)")
    breakdown = ric.miss_breakdown_pct
    print(f"  residual miss breakdown (Table 4): "
          f"handler={breakdown['handler']:.1f}pp "
          f"global={breakdown['global']:.1f}pp "
          f"other={breakdown['other']:.1f}pp")
    saving = 1 - ric.total_instructions / conventional.total_instructions
    time_saving = 1 - ric.modeled_time_ms / conventional.modeled_time_ms
    print(f"  instruction saving: {100 * saving:.1f}%   "
          f"modeled time saving: {100 * time_saving:.1f}% "
          f"(paper averages: 15% / 17%)")
    assert ric.console_output == initial.console_output


if __name__ == "__main__":
    main()
