"""A tour of the engine internals the paper builds on.

Walks the Figure 2 / Figure 4 machinery interactively: hidden classes and
their transitions, the ICVector filling up, handler kinds and their
context-(in)dependence, and what the extraction phase sees at the end.

Usage::

    python examples/engine_tour.py
"""

from repro.bytecode import compile_source, disassemble
from repro.bytecode.code import SiteKind
from repro.core.engine import Engine

#: The paper's Figure 2 example, verbatim.
FIGURE2 = """
function Point(x, y) {
  this.x = x;
  this.y = y;
}
var p1 = new Point(10, 20);
var p2 = new Point(30, 40);
"""


def main() -> None:
    # --- bytecode & access sites -----------------------------------------
    code = compile_source(FIGURE2, "figure2.jsl")
    print("== bytecode for the Figure 2 example ==")
    print(disassemble(code, recursive=True))
    sites = [
        slot
        for nested in code.iter_code_objects()
        for slot in nested.feedback_slots
    ]
    print(f"\n{len(sites)} object access sites; the named ones:")
    for slot in sites:
        if slot.kind in (SiteKind.NAMED_LOAD, SiteKind.NAMED_STORE):
            print(f"  {slot.site_key:45s} {slot.kind.value:12s} .{slot.name}")

    # --- hidden classes ------------------------------------------------------
    engine = Engine(seed=99)
    engine.run(FIGURE2, name="figure2")
    runtime = engine.last_run.runtime
    print("\n== hidden classes created (Figure 2's HC0 -> HC1 -> HC2) ==")
    for hc in runtime.hidden_classes.all_classes:
        if hc.creation_kind == "builtin":
            continue
        layout = ", ".join(f"{k}@{v}" for k, v in hc.layout.items()) or "(empty)"
        print(
            f"  HC#{hc.index:<3} @{hc.address:#x}  layout=[{layout}]  "
            f"created by {hc.creation_kind}:{hc.creation_key}"
        )

    # --- the ICVector after execution -------------------------------------------
    print("\n== ICVector state (paper Figure 3) ==")
    feedback = engine.last_run.feedback
    for site in feedback.all_sites():
        if not site.slots:
            continue
        handlers = ", ".join(
            f"HC#{hc.index}->{handler.describe()}"
            + ("" if handler.is_context_independent else " [context-dependent]")
            for hc, handler in site.slots
        )
        print(f"  {site.info.site_key:45s} {site.state.value:12s} {handlers}")

    # --- extraction: what RIC keeps ------------------------------------------------
    record = engine.extract_icrecord()
    print("\n== extracted ICRecord (paper Figure 6) ==")
    print(f"  HCVT rows:        {len(record.hcvt)}")
    print(f"  TOAST entries:    {len(record.toast)}")
    for key, pairs in record.toast.items():
        if key.startswith("builtin:"):
            continue
        for pair in pairs:
            if pair.incoming_hcid is None:
                print(f"    {key}: (no incoming) -> HCID {pair.outgoing_hcid}")
            else:
                print(
                    f"    {key}: (incoming HCID {pair.incoming_hcid}, "
                    f"+'{pair.transition_property}') -> HCID {pair.outgoing_hcid}"
                )
    links = [
        (row.hcid, dependent)
        for row in record.hcvt
        for dependent in row.dependents
    ]
    print(f"  dependent links:  {len(links)}")
    for hcid, dependent in links[:8]:
        handler = record.handlers[dependent.handler_id]
        print(f"    HCID {hcid} -> preload {dependent.site_key} with {handler}")
    print(f"  reusable handlers stored: {record.handlers}")


if __name__ == "__main__":
    main()
