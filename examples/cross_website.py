"""Cross-website reuse: the paper's §6 robustness scenario.

Two synthetic "websites" load the same seven libraries in different orders.
The ICRecord is generated while visiting website A and reused on website B
— the common case where library-level IC information is shared across
pages.  Global-object ICs are excluded (they are load-order dependent),
which is exactly why this works.

Usage::

    python examples/cross_website.py
"""

from repro import Engine
from repro.workloads import WEBSITE_A_ORDER, WEBSITE_B_ORDER, website_a, website_b


def main() -> None:
    engine = Engine(seed=13)

    print("website A loads:", " -> ".join(WEBSITE_A_ORDER))
    profile_a = engine.run(website_a(), name="website-a")
    ready = [line for line in profile_a.console_output if "ready" in line]
    print(f"  {len(ready)} libraries initialized, "
          f"{profile_a.counters.ic_misses} IC misses")

    record = engine.extract_icrecord()
    print(f"  extracted ICRecord: {record.stats()}")

    print("\nwebsite B loads:", " -> ".join(WEBSITE_B_ORDER))
    conventional = engine.run(website_b(), name="website-b")
    ric = engine.run(website_b(), name="website-b", icrecord=record)

    print(f"  conventional: {conventional.counters.ic_misses} misses "
          f"({conventional.ic_miss_rate_pct:.1f}%), "
          f"{conventional.total_instructions} instructions")
    print(f"  with RIC:     {ric.counters.ic_misses} misses "
          f"({ric.ic_miss_rate_pct:.1f}%), "
          f"{ric.total_instructions} instructions")
    print(f"  preloads applied cross-site: {ric.counters.ric_preloads} "
          f"({ric.counters.ric_validations} hidden classes validated)")

    saving = 1 - ric.total_instructions / conventional.total_instructions
    print(f"  instruction saving on the *different* website: {100 * saving:.1f}%")

    assert sorted(conventional.console_output) == sorted(ric.console_output)
    print("  outputs identical — reuse across differently-ordered pages is sound.")


if __name__ == "__main__":
    main()
