"""Sensitivity analysis: what makes RIC effective?

The paper's Table 1 attributes RIC's opportunity to each hidden class being
encountered at several object access sites (misses/HC ≈ 4.8 across the
seven libraries).  This example sweeps that quantity directly on generated
synthetic libraries and plots the result as an ASCII chart: more read
passes per shape → more avertable Dependent misses → bigger RIC win.

Usage::

    python examples/sensitivity_analysis.py
"""

from repro.harness.experiments import sensitivity_sweep


def bar(value: float, scale: float = 60.0) -> str:
    return "#" * int(round(value * scale))


def main() -> None:
    print("sweeping sites-per-shape on generated libraries "
          "(12 shapes x 4 fields x 3 instances)\n")
    rows = sensitivity_sweep(sites_per_shape_values=(1, 2, 3, 4, 6, 8))

    print(f"{'sites':>5s} {'misses/HC':>9s} {'miss reduction by RIC':>22s}")
    for row in rows:
        reduction = row["miss_reduction_fraction"]
        print(
            f"{row['sites_per_shape']:5d} {row['misses_per_hc']:9.1f} "
            f"{100 * reduction:6.1f}%  |{bar(reduction)}"
        )

    print(f"\n{'sites':>5s} {'normalized instructions (RIC / Conventional)':>45s}")
    for row in rows:
        normalized = row["normalized_instructions"]
        print(
            f"{row['sites_per_shape']:5d} {normalized:10.3f}           "
            f"|{bar(normalized)}"
        )

    print(
        "\nreading: the paper's libraries sit around misses/HC = 2.4-6.5 "
        "(Table 1);\nRIC's benefit is monotone in that quantity — the more "
        "sites each hidden\nclass reaches, the more misses linking can avert."
    )


if __name__ == "__main__":
    main()
