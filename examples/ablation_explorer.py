"""Ablation explorer: what each piece of RIC contributes.

Runs one workload under every configuration variant from DESIGN.md §6 —
full RIC, linking without handler reuse, no linking, and the unvalidated
"naive" scheme — plus the §9 snapshot baseline, and prints a comparison.

Usage::

    python examples/ablation_explorer.py [workload]
"""

import argparse

from repro import Engine, RICConfig
from repro.baselines.snapshot import SnapshotBaseline
from repro.workloads import WORKLOAD_NAMES, get_workload

CONFIGS = [
    ("full RIC", RICConfig()),
    ("linking only (regenerate handlers)", RICConfig(enable_handler_reuse=False)),
    ("no linking (record ignored)", RICConfig(enable_linking=False)),
    ("naive (no validation — unsound!)", RICConfig(validate=False)),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "workload", nargs="?", default="angularlike", choices=WORKLOAD_NAMES
    )
    args = parser.parse_args()
    workload = get_workload(args.workload)

    print(f"workload: {workload.name} — {workload.description}\n")
    print(f"{'configuration':38s} {'misses':>8s} {'instr':>10s} {'preloads':>9s}")
    print("-" * 70)

    baseline_instructions = None
    for label, config in CONFIGS:
        engine = Engine(config=config, seed=21)
        engine.run(workload.scripts(), name=workload.name)
        record = engine.extract_icrecord()
        conventional = engine.run(workload.scripts(), name=workload.name)
        ric = engine.run(workload.scripts(), name=workload.name, icrecord=record)
        if baseline_instructions is None:
            baseline_instructions = conventional.total_instructions
            print(
                f"{'conventional reuse (no RIC)':38s} "
                f"{conventional.counters.ic_misses:8d} "
                f"{conventional.total_instructions:10d} {'-':>9s}"
            )
        print(
            f"{label:38s} {ric.counters.ic_misses:8d} "
            f"{ric.total_instructions:10d} {ric.counters.ric_preloads:9d}"
        )
        assert ric.console_output == conventional.console_output, label

    # The snapshot baseline is a different trade-off: instant restore, but
    # application-specific and frozen (see tests/test_ablations.py for the
    # nondeterminism failure case).
    engine = Engine(seed=21)
    engine.run(workload.scripts(), name=workload.name)
    snapshot = SnapshotBaseline.capture(engine, workload.scripts())
    restored = snapshot.restore()
    print(
        f"\nsnapshot baseline (§9): restores {len(restored.globals)} globals "
        f"and {len(restored.console_output)} console lines without executing "
        f"anything ({snapshot.size_bytes / 1024:.1f} KB, key = exact script list)"
    )
    print("  -> but: application-specific, and unsound if init reads Date.now()")


if __name__ == "__main__":
    main()
