"""Quickstart: run a small JavaScript-like program through the full RIC
protocol — Initial run, extraction, Conventional Reuse, RIC Reuse.

Usage::

    python examples/quickstart.py
"""

from repro import Engine

SOURCE = """
// A tiny "library": a constructor, prototype methods, and a warm-up.
function Point(x, y) { this.x = x; this.y = y; }
Point.prototype.norm = function () {
  return Math.sqrt(this.x * this.x + this.y * this.y);
};
Point.prototype.scale = function (f) {
  return new Point(this.x * f, this.y * f);
};

var points = [];
for (var i = 0; i < 10; i++) { points.push(new Point(i, i + 1)); }
var total = 0;
for (var j = 0; j < points.length; j++) { total += points[j].scale(2).norm(); }
console.log("total norm:", Math.round(total));
"""


def main() -> None:
    engine = Engine(seed=42)

    # 1. Initial run: compiles the script, fills the code cache, builds IC
    #    state from scratch.
    initial = engine.run(SOURCE, name="quickstart")
    print("guest output:", initial.console_output)
    print(f"initial run:       {initial.counters.ic_misses} IC misses "
          f"({initial.ic_miss_rate_pct:.1f}% of accesses), "
          f"{initial.total_instructions} guest instructions")

    # 2. Extraction phase: pull the context-independent IC information out
    #    of the completed run (paper §5.2.1).
    record = engine.extract_icrecord()
    print(f"extracted record:  {record.stats()}")

    # 3. Conventional Reuse run: bytecode comes from the code cache, but the
    #    IC state is rebuilt from scratch — exactly as many misses again.
    conventional = engine.run(SOURCE, name="quickstart")
    print(f"conventional rerun: {conventional.counters.ic_misses} IC misses")

    # 4. RIC Reuse run: hidden classes are validated as they are created and
    #    Dependent sites are preloaded, averting their misses (paper §5.2.2).
    ric = engine.run(SOURCE, name="quickstart", icrecord=record)
    print(f"RIC rerun:          {ric.counters.ic_misses} IC misses "
          f"({ric.counters.ric_preloads} slots preloaded, "
          f"{ric.counters.ic_hits_on_preloaded} hits on preloaded slots)")

    saving = 1 - ric.total_instructions / conventional.total_instructions
    print(f"instruction saving: {100 * saving:.1f}%")
    assert ric.console_output == initial.console_output, "outputs must match"
    print("outputs identical across all runs — reuse is sound.")


if __name__ == "__main__":
    main()
